// Wire-frame and trace-delta codec tests (src/netio/frame.*).
//
// The framing layer fronts an untrusted transport: these tests drive the
// decoder through every hostile shape — torn prefixes byte by byte, bit
// flips in header and body, implausible lengths — and pin down the
// canonical-bytes property the crash-recovery story depends on.
#include <gtest/gtest.h>

#include <string>

#include "common/status.hpp"
#include "netio/frame.hpp"
#include "packet/fields.hpp"
#include "packet/packet_set.hpp"
#include "yardstick/persist.hpp"

namespace yardstick {
namespace {

using netio::DecodeResult;
using netio::DecodeStatus;
using netio::FrameType;
using packet::Ipv4Prefix;
using packet::PacketSet;

TEST(FrameTest, RoundTripsEveryFrameType) {
  for (const FrameType type :
       {FrameType::Hello, FrameType::HelloAck, FrameType::Batch, FrameType::Ack,
        FrameType::Busy, FrameType::Bye, FrameType::ByeAck, FrameType::Error}) {
    const std::string wire = netio::encode_frame(type, 42, "payload bytes");
    const DecodeResult r = netio::decode_frame(wire);
    ASSERT_EQ(r.status, DecodeStatus::Ok) << netio::to_string(type);
    EXPECT_EQ(r.frame.type, type);
    EXPECT_EQ(r.frame.seq, 42u);
    EXPECT_EQ(r.frame.body, "payload bytes");
    EXPECT_EQ(r.consumed, wire.size());
  }
}

TEST(FrameTest, EmptyBodyRoundTrips) {
  const std::string wire = netio::encode_frame(FrameType::Bye, 7);
  const DecodeResult r = netio::decode_frame(wire);
  ASSERT_EQ(r.status, DecodeStatus::Ok);
  EXPECT_TRUE(r.frame.body.empty());
  EXPECT_EQ(r.consumed, netio::kFrameHeaderBytes);
}

TEST(FrameTest, EveryTornPrefixIsNeedMoreNeverCorrupt) {
  // A short read can stop at any byte; the decoder must ask for more
  // rather than misreading a partial frame as garbage.
  const std::string wire = netio::encode_frame(FrameType::Batch, 9, "abcdef");
  for (size_t len = 0; len < wire.size(); ++len) {
    const DecodeResult r = netio::decode_frame(std::string_view(wire).substr(0, len));
    EXPECT_EQ(r.status, DecodeStatus::NeedMore) << "prefix length " << len;
    EXPECT_EQ(r.consumed, 0u);
  }
}

TEST(FrameTest, DecodeConsumesOnlyTheFirstFrame) {
  const std::string a = netio::encode_frame(FrameType::Ack, 1);
  const std::string b = netio::encode_frame(FrameType::Ack, 2);
  const DecodeResult r = netio::decode_frame(a + b);
  ASSERT_EQ(r.status, DecodeStatus::Ok);
  EXPECT_EQ(r.frame.seq, 1u);
  EXPECT_EQ(r.consumed, a.size());
}

TEST(FrameTest, BadMagicIsCorrupt) {
  std::string wire = netio::encode_frame(FrameType::Ack, 1);
  wire[0] ^= 0x40;
  EXPECT_EQ(netio::decode_frame(wire).status, DecodeStatus::Corrupt);
}

TEST(FrameTest, WrongVersionIsCorrupt) {
  std::string wire = netio::encode_frame(FrameType::Ack, 1);
  wire[4] = char(netio::kFrameVersion + 1);
  EXPECT_EQ(netio::decode_frame(wire).status, DecodeStatus::Corrupt);
}

TEST(FrameTest, UnknownTypeIsCorrupt) {
  std::string wire = netio::encode_frame(FrameType::Ack, 1);
  wire[5] = 0x7f;
  EXPECT_EQ(netio::decode_frame(wire).status, DecodeStatus::Corrupt);
}

TEST(FrameTest, OversizeLengthIsCorruptNotAMemoryBomb) {
  // A flipped bit in body_len must not drive the reader into reserving
  // gigabytes; anything over kMaxFrameBody is rejected up front.
  std::string wire = netio::encode_frame(FrameType::Batch, 1, "x");
  wire[14] = char(0xff);
  wire[15] = char(0xff);
  wire[16] = char(0xff);
  wire[17] = char(0x7f);
  EXPECT_EQ(netio::decode_frame(wire).status, DecodeStatus::Corrupt);
}

TEST(FrameTest, FlippedBodyBitFailsTheChecksum) {
  std::string wire = netio::encode_frame(FrameType::Batch, 1, "payload");
  wire[netio::kFrameHeaderBytes + 3] ^= 0x01;
  const DecodeResult r = netio::decode_frame(wire);
  EXPECT_EQ(r.status, DecodeStatus::Corrupt);
  EXPECT_NE(r.error.find("checksum"), std::string::npos);
}

TEST(FrameTest, FlippedChecksumBitIsCorrupt) {
  std::string wire = netio::encode_frame(FrameType::Batch, 1, "payload");
  wire[18] ^= 0x10;  // checksum field
  EXPECT_EQ(netio::decode_frame(wire).status, DecodeStatus::Corrupt);
}

// --- trace deltas -------------------------------------------------------

class TraceDeltaTest : public ::testing::Test {
 protected:
  [[nodiscard]] PacketSet prefix(const char* cidr) {
    return PacketSet::dst_prefix(mgr_, Ipv4Prefix::parse(cidr));
  }

  [[nodiscard]] coverage::CoverageTrace sample_trace() {
    coverage::CoverageTrace t;
    t.mark_packet(3, prefix("10.0.0.0/8"));
    t.mark_packet(5, prefix("10.1.0.0/16").union_with(prefix("192.168.0.0/24")));
    t.mark_rule(net::RuleId{11});
    t.mark_rule(net::RuleId{4});
    t.mark_rule(net::RuleId{900});
    return t;
  }

  bdd::BddManager mgr_{packet::kNumHeaderBits};
};

TEST_F(TraceDeltaTest, RoundTripPreservesTheTrace) {
  const coverage::CoverageTrace original = sample_trace();
  const std::string delta = netio::encode_trace_delta(original);

  bdd::BddManager other(packet::kNumHeaderBits);
  const coverage::CoverageTrace decoded = netio::decode_trace_delta(delta, other);
  // Canonical persist-v2 bytes are equal iff the traces hold the same sets.
  EXPECT_EQ(ys::serialize_trace(decoded, other), ys::serialize_trace(original, mgr_));
  EXPECT_EQ(netio::delta_event_count(delta), 5u);  // 3 rules + 2 locations
}

TEST_F(TraceDeltaTest, EncodingIsCanonicalAcrossInsertionOrder) {
  coverage::CoverageTrace forward;
  forward.mark_rule(net::RuleId{1});
  forward.mark_rule(net::RuleId{2});
  forward.mark_rule(net::RuleId{3});
  forward.mark_packet(1, prefix("10.0.0.0/8"));
  coverage::CoverageTrace reverse;
  reverse.mark_packet(1, prefix("10.0.0.0/8"));
  reverse.mark_rule(net::RuleId{3});
  reverse.mark_rule(net::RuleId{1});
  reverse.mark_rule(net::RuleId{2});
  EXPECT_EQ(netio::encode_trace_delta(forward), netio::encode_trace_delta(reverse));
}

TEST_F(TraceDeltaTest, EmptyTraceRoundTrips) {
  const coverage::CoverageTrace empty;
  const std::string delta = netio::encode_trace_delta(empty);
  const coverage::CoverageTrace decoded = netio::decode_trace_delta(delta, mgr_);
  EXPECT_TRUE(decoded.marked_rules().empty());
  EXPECT_TRUE(decoded.marked_packets().empty());
  EXPECT_EQ(netio::delta_event_count(delta), 0u);
}

TEST_F(TraceDeltaTest, TruncatedDeltaNeverDecodes) {
  // Cuts inside the fixed-size prefix are reported as Truncated; cuts
  // deeper in may instead trip the node-count plausibility guard
  // (Corrupted) — either way the decoder must refuse, never misread.
  const std::string delta = netio::encode_trace_delta(sample_trace());
  for (const size_t keep : {size_t{0}, size_t{2}}) {
    try {
      (void)netio::decode_trace_delta(std::string_view(delta).substr(0, keep), mgr_);
      FAIL() << "accepted truncation at " << keep;
    } catch (const ys::CorruptTraceError& e) {
      EXPECT_EQ(e.detail(), ys::CorruptTraceError::Detail::Truncated) << keep;
    }
  }
  for (size_t keep = 3; keep < delta.size(); keep += 7) {
    EXPECT_THROW(
        (void)netio::decode_trace_delta(std::string_view(delta).substr(0, keep), mgr_),
        ys::CorruptTraceError)
        << keep;
  }
}

TEST_F(TraceDeltaTest, TrailingGarbageIsCorrupt) {
  std::string delta = netio::encode_trace_delta(sample_trace());
  delta += "extra";
  try {
    (void)netio::decode_trace_delta(delta, mgr_);
    FAIL() << "accepted trailing garbage";
  } catch (const ys::CorruptTraceError& e) {
    EXPECT_EQ(e.detail(), ys::CorruptTraceError::Detail::Corrupted);
  }
}

TEST_F(TraceDeltaTest, OutOfRangeVariableIsCorrupt) {
  // Hand-craft a node whose variable lies outside the 104-bit universe.
  std::string delta;
  netio::put_u32(delta, 1);    // node_count
  netio::put_u8(delta, 200);   // var 200 >= num_vars
  netio::put_u32(delta, 0);    // low -> false
  netio::put_u32(delta, 1);    // high -> true
  netio::put_u32(delta, 0);    // rules
  netio::put_u32(delta, 0);    // locations
  EXPECT_THROW((void)netio::decode_trace_delta(delta, mgr_), ys::CorruptTraceError);
}

TEST_F(TraceDeltaTest, ImplausibleNodeCountIsRejectedBeforeAllocation) {
  std::string delta;
  netio::put_u32(delta, 0x40000000u);  // node_count far beyond the bytes present
  EXPECT_THROW((void)netio::decode_trace_delta(delta, mgr_), ys::CorruptTraceError);
  EXPECT_THROW((void)netio::delta_event_count(delta), ys::CorruptTraceError);
}

TEST_F(TraceDeltaTest, ForwardNodeReferenceIsCorrupt) {
  // Hand-craft: one node whose low ref points at itself (ref 2).
  std::string delta;
  netio::put_u32(delta, 1);  // node_count
  netio::put_u8(delta, 0);   // var
  netio::put_u32(delta, 2);  // low -> forward reference
  netio::put_u32(delta, 1);  // high -> true
  netio::put_u32(delta, 0);  // rules
  netio::put_u32(delta, 0);  // locations
  try {
    (void)netio::decode_trace_delta(delta, mgr_);
    FAIL() << "accepted forward reference";
  } catch (const ys::CorruptTraceError& e) {
    EXPECT_EQ(e.detail(), ys::CorruptTraceError::Detail::Corrupted);
  }
}

TEST_F(TraceDeltaTest, VariableOrderingViolationIsCorrupt) {
  // Parent at var 5 pointing to a child at var 3: not a valid ROBDD.
  std::string delta;
  netio::put_u32(delta, 2);  // node_count
  netio::put_u8(delta, 3);   // child: var 3
  netio::put_u32(delta, 0);
  netio::put_u32(delta, 1);
  netio::put_u8(delta, 5);   // parent: var 5 — deeper than its child
  netio::put_u32(delta, 2);  // low -> child
  netio::put_u32(delta, 1);
  netio::put_u32(delta, 0);  // rules
  netio::put_u32(delta, 0);  // locations
  EXPECT_THROW((void)netio::decode_trace_delta(delta, mgr_), ys::CorruptTraceError);
}

}  // namespace
}  // namespace yardstick
