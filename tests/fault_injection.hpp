// RAII harness over the fault-injection registry (src/common/fault.hpp).
//
// A test arms a named failure point for the duration of one scope:
//
//   ScopedFault boom("persist.save.commit", throw_io("disk full"));
//   EXPECT_THROW(save_trace(path, trace, mgr), IoError);
//
// The destructor disarms everything, so a throwing test body cannot leak
// an armed fault into the next test.
#pragma once

#include <functional>
#include <string>

#include "common/budget.hpp"
#include "common/fault.hpp"
#include "common/status.hpp"

namespace yardstick::testutil {

/// Arms `point` so its `nth` crossing (1 = next) runs `action`; disarms the
/// whole registry on scope exit.
class ScopedFault {
 public:
  ScopedFault(const std::string& point, std::function<void()> action, uint64_t nth = 1) {
    fault::arm(point, nth, std::move(action));
  }
  ~ScopedFault() { fault::reset(); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

/// Arms a value-shaping point (fault::fire_adjust) for one scope; disarms
/// the whole registry on scope exit. Used for syscall-shaped faults in the
/// service I/O layer: short reads/writes, EINTR, accept failures.
class ScopedAdjustFault {
 public:
  ScopedAdjustFault(const std::string& point, std::function<int64_t(int64_t)> shape,
                    uint64_t nth = 1) {
    fault::arm_adjust(point, nth, std::move(shape));
  }
  ~ScopedAdjustFault() { fault::reset(); }

  ScopedAdjustFault(const ScopedAdjustFault&) = delete;
  ScopedAdjustFault& operator=(const ScopedAdjustFault&) = delete;
};

/// Shape: make the syscall fail with `err` (the wrapper sets errno = err
/// and behaves as if the kernel refused the call). EINTR here exercises
/// the retry loops; ECONNRESET/EIO exercise the error paths.
inline std::function<int64_t(int64_t)> fail_with(int err) {
  return [err](int64_t) { return -static_cast<int64_t>(err); };
}

/// Shape: cap the requested byte count at `n` — a short read/write. The
/// full-I/O loops must absorb it without corrupting the stream.
inline std::function<int64_t(int64_t)> cap_len(int64_t n) {
  return [n](int64_t requested) { return requested < n ? requested : n; };
}

/// Action: simulate the OS refusing an I/O operation.
inline std::function<void()> throw_io(std::string message) {
  return [message = std::move(message)] { throw ys::IoError(message); };
}

/// Action: simulate a tripped resource budget at the fault site.
inline std::function<void()> trip_budget(std::string description) {
  return [description = std::move(description)] {
    throw ys::BudgetExceededError(description);
  };
}

/// Action: raise a budget's cooperative cancel flag, as another thread
/// would; the *next* poll of the budget observes it.
inline std::function<void()> cancel(ys::ResourceBudget& budget) {
  return [&budget] { budget.request_cancel(); };
}

}  // namespace yardstick::testutil
