// RAII harness over the fault-injection registry (src/common/fault.hpp).
//
// A test arms a named failure point for the duration of one scope:
//
//   ScopedFault boom("persist.save.commit", throw_io("disk full"));
//   EXPECT_THROW(save_trace(path, trace, mgr), IoError);
//
// The destructor disarms everything, so a throwing test body cannot leak
// an armed fault into the next test.
#pragma once

#include <functional>
#include <string>

#include "common/budget.hpp"
#include "common/fault.hpp"
#include "common/status.hpp"

namespace yardstick::testutil {

/// Arms `point` so its `nth` crossing (1 = next) runs `action`; disarms the
/// whole registry on scope exit.
class ScopedFault {
 public:
  ScopedFault(const std::string& point, std::function<void()> action, uint64_t nth = 1) {
    fault::arm(point, nth, std::move(action));
  }
  ~ScopedFault() { fault::reset(); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

/// Action: simulate the OS refusing an I/O operation.
inline std::function<void()> throw_io(std::string message) {
  return [message = std::move(message)] { throw ys::IoError(message); };
}

/// Action: simulate a tripped resource budget at the fault site.
inline std::function<void()> trip_budget(std::string description) {
  return [description = std::move(description)] {
    throw ys::BudgetExceededError(description);
  };
}

/// Action: raise a budget's cooperative cancel flag, as another thread
/// would; the *next* poll of the budget observes it.
inline std::function<void()> cancel(ys::ResourceBudget& budget) {
  return [&budget] { budget.request_cancel(); };
}

}  // namespace yardstick::testutil
