// Incremental recomputation cache (DESIGN.md §11): content-hash keyed
// reuse of per-device match/covered sets across engine constructions.
//
// The contract under test: with a cache directory set, every run's output
// is bit-identical to a from-scratch run at any thread count; deltas
// invalidate exactly the touched devices; and a missing, corrupt,
// truncated or options-mismatched cache silently degrades to a full
// rebuild — never an error, never a wrong answer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>

#include "common/budget.hpp"
#include "test_util.hpp"
#include "yardstick/cache.hpp"
#include "yardstick/delta.hpp"
#include "yardstick/engine.hpp"
#include "yardstick/tracker.hpp"

namespace yardstick::ys {
namespace {

using packet::Ipv4Prefix;
using packet::PacketSet;
using testutil::make_tiny;
using testutil::TinyNetwork;

/// One engine construction, self-contained: its own manager, its own
/// structural copy of the shared trace.
struct EngineRun {
  std::unique_ptr<bdd::BddManager> mgr;
  coverage::CoverageTrace trace;
  std::unique_ptr<CoverageEngine> engine;
};

EngineRun run_engine(const net::Network& network, const coverage::CoverageTrace& trace,
               const std::string& cache_dir, unsigned threads = 1,
               const ResourceBudget* budget = nullptr) {
  EngineRun run;
  run.mgr = std::make_unique<bdd::BddManager>(packet::kNumHeaderBits);
  run.trace = trace.imported_into(*run.mgr);
  run.engine = std::make_unique<CoverageEngine>(
      *run.mgr, network, run.trace, EngineOptions{budget, threads, cache_dir});
  return run;
}

/// Bit-identity across two engines over the same network: every per-rule
/// set and every headline metric, compared exactly.
void expect_same_results(const net::Network& network, const CoverageEngine& want,
                         const CoverageEngine& got) {
  for (const net::Rule& rule : network.rules()) {
    EXPECT_EQ(want.match_sets().match_set_size(rule.id),
              got.match_sets().match_set_size(rule.id))
        << "match set of rule " << rule.id.value;
    EXPECT_EQ(want.covered_sets().covered_size(rule.id),
              got.covered_sets().covered_size(rule.id))
        << "covered set of rule " << rule.id.value;
  }
  const MetricRow a = want.metrics();
  const MetricRow b = got.metrics();
  EXPECT_EQ(a.device_fractional, b.device_fractional);
  EXPECT_EQ(a.interface_fractional, b.interface_fractional);
  EXPECT_EQ(a.rule_fractional, b.rule_fractional);
  EXPECT_EQ(a.rule_weighted, b.rule_weighted);
  EXPECT_EQ(a.truncated, b.truncated);
}

class IncrementalTest : public ::testing::Test {
 protected:
  IncrementalTest() : tiny_(make_tiny()) {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/incremental_" + info->name();
    std::remove(cache_file().c_str());
  }
  ~IncrementalTest() override { std::remove(cache_file().c_str()); }

  [[nodiscard]] std::string cache_file() const { return dir_ + "/coverage.cache"; }

  [[nodiscard]] bool cache_exists() const { return std::ifstream(cache_file()).good(); }

  /// Packets at both host ports plus one state-inspection rule mark, so
  /// both Algorithm-1 branches land in the cache.
  [[nodiscard]] coverage::CoverageTrace base_trace(const TinyNetwork& t) {
    CoverageTracker tracker;
    tracker.mark_packet(net::to_location(t.l1_host),
                        PacketSet::dst_prefix(scratch_, t.p1));
    tracker.mark_packet(net::to_location(t.l2_host),
                        PacketSet::dst_prefix(scratch_, t.p2));
    tracker.mark_rule(t.sp_to_p1);
    return tracker.trace();
  }

  bdd::BddManager scratch_{packet::kNumHeaderBits};
  TinyNetwork tiny_;
  std::string dir_;
};

TEST_F(IncrementalTest, ColdRunSavesWarmRunFullyHits) {
  const coverage::CoverageTrace trace = base_trace(tiny_);

  const EngineRun cold = run_engine(tiny_.net, trace, dir_);
  const CacheStats* cold_stats = cold.engine->cache_stats();
  ASSERT_NE(cold_stats, nullptr);
  EXPECT_FALSE(cold_stats->loaded);
  EXPECT_EQ(cold_stats->fallback_reason, "no cache file");
  EXPECT_TRUE(cold_stats->saved) << cold_stats->save_error;
  EXPECT_TRUE(cache_exists());

  const EngineRun warm = run_engine(tiny_.net, trace, dir_);
  const CacheStats* warm_stats = warm.engine->cache_stats();
  ASSERT_NE(warm_stats, nullptr);
  EXPECT_TRUE(warm_stats->loaded);
  EXPECT_EQ(warm_stats->devices, 3u);
  EXPECT_EQ(warm_stats->match_hits, 3u);
  EXPECT_EQ(warm_stats->cover_hits, 3u);
  EXPECT_EQ(warm_stats->invalidated, 0u);
  EXPECT_FALSE(warm_stats->saved);  // every device hit: file already current

  const EngineRun scratch = run_engine(tiny_.net, trace, /*cache_dir=*/"");
  EXPECT_EQ(scratch.engine->cache_stats(), nullptr);
  expect_same_results(tiny_.net, *scratch.engine, *cold.engine);
  expect_same_results(tiny_.net, *scratch.engine, *warm.engine);
}

TEST_F(IncrementalTest, WarmResultsBitIdenticalAtEveryThreadCount) {
  const coverage::CoverageTrace trace = base_trace(tiny_);
  const EngineRun serial_scratch = run_engine(tiny_.net, trace, /*cache_dir=*/"");
  for (const unsigned threads : {1u, 2u, 4u}) {
    const std::string dir = dir_ + "_t" + std::to_string(threads);
    std::remove((dir + "/coverage.cache").c_str());
    const EngineRun cold = run_engine(tiny_.net, trace, dir, threads);
    const EngineRun warm = run_engine(tiny_.net, trace, dir, threads);
    EXPECT_EQ(warm.engine->cache_stats()->match_hits, 3u) << threads << " threads";
    expect_same_results(tiny_.net, *serial_scratch.engine, *cold.engine);
    expect_same_results(tiny_.net, *serial_scratch.engine, *warm.engine);
    std::remove((dir + "/coverage.cache").c_str());
  }
}

TEST_F(IncrementalTest, RuleAddedInvalidatesOnlyThatDevice) {
  const coverage::CoverageTrace trace = base_trace(tiny_);
  (void)run_engine(tiny_.net, trace, dir_);  // cold: seed the cache

  // Same topology, one extra leaf1 route appended: leaf1's key changes,
  // spine's and leaf2's do not (RuleIds may shift; content keys must not).
  TinyNetwork grown = make_tiny();
  grown.net.add_rule(grown.leaf1, net::MatchSpec::for_dst(Ipv4Prefix::parse("10.0.3.0/24")),
                     net::Action::forward({grown.l1_up}), net::RouteKind::Internal, 8);
  const coverage::CoverageTrace grown_trace = base_trace(grown);

  const EngineRun warm = run_engine(grown.net, grown_trace, dir_);
  const CacheStats* stats = warm.engine->cache_stats();
  EXPECT_TRUE(stats->loaded);
  EXPECT_EQ(stats->match_hits, 2u);
  EXPECT_EQ(stats->cover_hits, 2u);
  EXPECT_EQ(stats->invalidated, 1u);
  EXPECT_TRUE(stats->saved);  // refreshed with leaf1's new record

  const EngineRun scratch = run_engine(grown.net, grown_trace, /*cache_dir=*/"");
  expect_same_results(grown.net, *scratch.engine, *warm.engine);
}

TEST_F(IncrementalTest, RuleRemovedInvalidatesOnlyThatDevice) {
  TinyNetwork grown = make_tiny();
  grown.net.add_rule(grown.leaf1, net::MatchSpec::for_dst(Ipv4Prefix::parse("10.0.3.0/24")),
                     net::Action::forward({grown.l1_up}), net::RouteKind::Internal, 8);
  (void)run_engine(grown.net, base_trace(grown), dir_);  // cold, with the extra rule

  const coverage::CoverageTrace trace = base_trace(tiny_);
  const EngineRun warm = run_engine(tiny_.net, trace, dir_);  // the rule is gone
  const CacheStats* stats = warm.engine->cache_stats();
  EXPECT_TRUE(stats->loaded);
  EXPECT_EQ(stats->match_hits, 2u);
  EXPECT_EQ(stats->invalidated, 1u);

  const EngineRun scratch = run_engine(tiny_.net, trace, /*cache_dir=*/"");
  expect_same_results(tiny_.net, *scratch.engine, *warm.engine);
}

TEST_F(IncrementalTest, RuleReorderInvalidatesOnlyThatDevice) {
  // Two equal-priority disjoint routes: swapping their insertion (= table)
  // order leaves the device's semantics identical but changes its content
  // key. The cache must treat it as a change — positions key the records —
  // and the recomputed output must still match scratch exactly.
  const auto p3 = Ipv4Prefix::parse("10.0.3.0/24");
  const auto p4 = Ipv4Prefix::parse("10.0.4.0/24");
  TinyNetwork ab = make_tiny();
  ab.net.add_rule(ab.leaf1, net::MatchSpec::for_dst(p3),
                  net::Action::forward({ab.l1_up}), net::RouteKind::Internal, 8);
  ab.net.add_rule(ab.leaf1, net::MatchSpec::for_dst(p4),
                  net::Action::forward({ab.l1_up}), net::RouteKind::Internal, 8);
  (void)run_engine(ab.net, base_trace(ab), dir_);

  TinyNetwork ba = make_tiny();
  ba.net.add_rule(ba.leaf1, net::MatchSpec::for_dst(p4),
                  net::Action::forward({ba.l1_up}), net::RouteKind::Internal, 8);
  ba.net.add_rule(ba.leaf1, net::MatchSpec::for_dst(p3),
                  net::Action::forward({ba.l1_up}), net::RouteKind::Internal, 8);
  const coverage::CoverageTrace trace = base_trace(ba);

  const EngineRun warm = run_engine(ba.net, trace, dir_);
  const CacheStats* stats = warm.engine->cache_stats();
  EXPECT_TRUE(stats->loaded);
  EXPECT_EQ(stats->match_hits, 2u);
  EXPECT_EQ(stats->invalidated, 1u);

  const EngineRun scratch = run_engine(ba.net, trace, /*cache_dir=*/"");
  expect_same_results(ba.net, *scratch.engine, *warm.engine);
}

TEST_F(IncrementalTest, FibEditOnOneDeviceInvalidatesOnlyThatDevice) {
  const coverage::CoverageTrace trace = base_trace(tiny_);
  (void)run_engine(tiny_.net, trace, dir_);

  TinyNetwork edited = make_tiny();
  edited.net.mutable_rule(edited.l2_to_p2).action = net::Action::drop();
  const coverage::CoverageTrace edited_trace = base_trace(edited);

  const EngineRun warm = run_engine(edited.net, edited_trace, dir_);
  const CacheStats* stats = warm.engine->cache_stats();
  EXPECT_TRUE(stats->loaded);
  EXPECT_EQ(stats->match_hits, 2u);  // leaf1 and spine reused
  EXPECT_EQ(stats->cover_hits, 2u);
  EXPECT_EQ(stats->invalidated, 1u);

  const EngineRun scratch = run_engine(edited.net, edited_trace, /*cache_dir=*/"");
  expect_same_results(edited.net, *scratch.engine, *warm.engine);
}

TEST_F(IncrementalTest, TraceChangeInvalidatesCoverageButReusesMatchSets) {
  (void)run_engine(tiny_.net, base_trace(tiny_), dir_);

  // Same FIBs, one extra packet mark at leaf1's host port: match sets are
  // pure functions of the FIBs (all reusable); only leaf1's covered sets
  // see a different trace slice.
  coverage::CoverageTrace bigger = base_trace(tiny_);
  {
    CoverageTracker extra;
    extra.mark_packet(net::to_location(tiny_.l1_host),
                      PacketSet::dst_prefix(scratch_, tiny_.p2));
    bigger.merge(extra.trace());
  }

  const EngineRun warm = run_engine(tiny_.net, bigger, dir_);
  const CacheStats* stats = warm.engine->cache_stats();
  EXPECT_TRUE(stats->loaded);
  EXPECT_EQ(stats->match_hits, 3u);
  EXPECT_EQ(stats->cover_hits, 2u);
  EXPECT_EQ(stats->invalidated, 1u);

  const EngineRun scratch = run_engine(tiny_.net, bigger, /*cache_dir=*/"");
  expect_same_results(tiny_.net, *scratch.engine, *warm.engine);
}

TEST_F(IncrementalTest, OptionsChangeForcesFullRebuild) {
  const coverage::CoverageTrace trace = base_trace(tiny_);
  (void)run_engine(tiny_.net, trace, dir_, /*threads=*/1);

  const EngineRun warm = run_engine(tiny_.net, trace, dir_, /*threads=*/2);
  const CacheStats* stats = warm.engine->cache_stats();
  EXPECT_FALSE(stats->loaded);
  EXPECT_EQ(stats->fallback_reason, "engine options changed");
  EXPECT_EQ(stats->match_hits, 0u);
  EXPECT_TRUE(stats->saved);  // re-keyed under the new fingerprint

  const EngineRun scratch = run_engine(tiny_.net, trace, /*cache_dir=*/"", /*threads=*/2);
  expect_same_results(tiny_.net, *scratch.engine, *warm.engine);

  // And the rewrite took: the next run at 2 threads is a full hit.
  const EngineRun rewarmed = run_engine(tiny_.net, trace, dir_, /*threads=*/2);
  EXPECT_EQ(rewarmed.engine->cache_stats()->match_hits, 3u);
}

TEST_F(IncrementalTest, CorruptOrTruncatedCacheFallsBackToFullRebuild) {
  const coverage::CoverageTrace trace = base_trace(tiny_);
  (void)run_engine(tiny_.net, trace, dir_);
  std::ifstream in(cache_file(), std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string good = buffer.str();
  ASSERT_FALSE(good.empty());
  const EngineRun scratch = run_engine(tiny_.net, trace, /*cache_dir=*/"");

  const auto overwrite = [&](const std::string& bytes) {
    std::ofstream out(cache_file(), std::ios::binary | std::ios::trunc);
    out << bytes;
  };

  // Foreign header, truncation, and a flipped byte (checksum mismatch):
  // each degrades to a clean full rebuild with a recorded reason.
  std::string flipped = good;
  flipped[good.size() / 2] ^= 0x01;
  for (const std::string& bad :
       {std::string("not a cache\n"), good.substr(0, good.size() / 2), flipped}) {
    overwrite(bad);
    const EngineRun warm = run_engine(tiny_.net, trace, dir_);
    const CacheStats* stats = warm.engine->cache_stats();
    EXPECT_FALSE(stats->loaded);
    EXPECT_FALSE(stats->fallback_reason.empty());
    EXPECT_EQ(stats->match_hits, 0u);
    EXPECT_TRUE(stats->saved);  // replaced the damaged file
    expect_same_results(tiny_.net, *scratch.engine, *warm.engine);
  }

  // The last rebuild re-persisted a valid cache.
  const EngineRun healed = run_engine(tiny_.net, trace, dir_);
  EXPECT_TRUE(healed.engine->cache_stats()->loaded);
  EXPECT_EQ(healed.engine->cache_stats()->match_hits, 3u);
}

TEST_F(IncrementalTest, TruncatedRunNeverWritesTheCache) {
  const coverage::CoverageTrace trace = base_trace(tiny_);

  // Cold truncated run: partial sets must not be persisted at all.
  ResourceBudget tight;
  tight.with_max_bdd_nodes(64);
  const EngineRun degraded = run_engine(tiny_.net, trace, dir_, 1, &tight);
  ASSERT_TRUE(degraded.engine->truncated());
  const CacheStats* stats = degraded.engine->cache_stats();
  EXPECT_FALSE(stats->saved);
  EXPECT_FALSE(stats->save_error.empty());
  EXPECT_FALSE(cache_exists());

  // A good cache in place: a later truncated run must not clobber it.
  (void)run_engine(tiny_.net, trace, dir_);
  std::ifstream in(cache_file(), std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string committed = buffer.str();
  ASSERT_FALSE(committed.empty());

  ResourceBudget tight2;
  tight2.with_max_bdd_nodes(64);
  const EngineRun degraded2 = run_engine(tiny_.net, trace, dir_, 1, &tight2);
  EXPECT_TRUE(degraded2.engine->truncated());
  std::ifstream in2(cache_file(), std::ios::binary);
  std::ostringstream buffer2;
  buffer2 << in2.rdbuf();
  EXPECT_EQ(buffer2.str(), committed);
}

TEST_F(IncrementalTest, RandomizedChurnMatchesScratchAtEveryStep) {
  // Property test: an evolving network/trace driven through one persistent
  // cache, checked for bit-identity against from-scratch runs — serial AND
  // parallel — after every delta.
  std::mt19937 rng(20210823);  // SIGCOMM '21, day one
  TinyNetwork t = make_tiny();
  coverage::CoverageTrace trace = base_trace(t);

  for (int step = 0; step < 8; ++step) {
    switch (rng() % 3) {
      case 0: {  // append a random route to a random device
        const net::DeviceId dev{static_cast<uint32_t>(rng() % 3)};
        const std::string prefix = "10." + std::to_string(1 + rng() % 200) + "." +
                                   std::to_string(rng() % 250) + ".0/24";
        t.net.add_rule(dev, net::MatchSpec::for_dst(Ipv4Prefix::parse(prefix)),
                       rng() % 2 == 0 ? net::Action::forward({t.l1_up})
                                      : net::Action::drop(),
                       net::RouteKind::Internal, 8);
        break;
      }
      case 1: {  // flip a random rule's action in place
        const net::RuleId rid{static_cast<uint32_t>(rng() % t.net.rule_count())};
        t.net.mutable_rule(rid).action = net::Action::drop();
        break;
      }
      default: {  // extend the trace at a random location
        CoverageTracker extra;
        const auto loc = rng() % 2 == 0 ? net::to_location(t.l1_host)
                                        : net::device_location(t.spine);
        extra.mark_packet(loc, PacketSet::dst_prefix(
                                   scratch_, rng() % 2 == 0 ? t.p1 : t.p2));
        if (rng() % 2 == 0) {
          extra.mark_rule(net::RuleId{static_cast<uint32_t>(rng() % t.net.rule_count())});
        }
        trace.merge(extra.trace());
        break;
      }
    }

    const EngineRun incremental = run_engine(t.net, trace, dir_, /*threads=*/2);
    EXPECT_FALSE(incremental.engine->truncated());
    const EngineRun serial = run_engine(t.net, trace, /*cache_dir=*/"", /*threads=*/1);
    const EngineRun parallel = run_engine(t.net, trace, /*cache_dir=*/"", /*threads=*/2);
    expect_same_results(t.net, *serial.engine, *incremental.engine);
    expect_same_results(t.net, *parallel.engine, *incremental.engine);
    const CacheStats* stats = incremental.engine->cache_stats();
    ASSERT_NE(stats, nullptr);
    if (stats->loaded) {
      EXPECT_EQ(stats->invalidated, stats->cover_misses());
    }
  }
}

}  // namespace
}  // namespace yardstick::ys
