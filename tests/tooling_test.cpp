// Tests for the operational tooling around the engine: snapshot
// monitoring (§5.2 universe guard, §8.2 regression catching), trace
// persistence, and JSON export.
#include <gtest/gtest.h>

#include <cstdio>

#include "nettest/state_checks.hpp"
#include "test_util.hpp"
#include "yardstick/engine.hpp"
#include "yardstick/json.hpp"
#include "yardstick/persist.hpp"
#include "yardstick/snapshot.hpp"

namespace yardstick::ys {
namespace {

using packet::Ipv4Prefix;
using packet::PacketSet;
using testutil::make_tiny;
using testutil::TinyNetwork;

// --- SnapshotMonitor ---

SnapshotStats stats(const std::string& label, uint64_t paths, size_t rules,
                    MetricRow coverage) {
  SnapshotStats s;
  s.label = label;
  s.path_universe_size = paths;
  s.rule_count = rules;
  s.coverage = coverage;
  return s;
}

TEST(SnapshotMonitorTest, FirstSnapshotNeverAlerts) {
  SnapshotMonitor monitor;
  EXPECT_TRUE(monitor.record(stats("day0", 1000, 50, {1, 1, 1, 1})).empty());
  EXPECT_EQ(monitor.history().size(), 1u);
}

TEST(SnapshotMonitorTest, FlagsDramaticUniverseShift) {
  SnapshotMonitor monitor;
  (void)monitor.record(stats("day0", 1000, 50, {1, 1, 1, 1}));
  const auto alerts = monitor.record(stats("day1", 400, 50, {1, 1, 1, 1}));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, SnapshotAlert::Kind::PathUniverseShift);
  EXPECT_NE(alerts[0].message.find("day0"), std::string::npos);
}

TEST(SnapshotMonitorTest, SmallDriftIsQuiet) {
  SnapshotMonitor monitor;
  (void)monitor.record(stats("day0", 1000, 50, {1, 1, 1, 1}));
  EXPECT_TRUE(monitor.record(stats("day1", 1100, 52, {1, 1, 1, 1})).empty());
}

TEST(SnapshotMonitorTest, FlagsCoverageRegression) {
  SnapshotMonitor monitor;
  (void)monitor.record(stats("day0", 1000, 50, {1.0, 0.8, 0.6, 0.9}));
  const auto alerts = monitor.record(stats("day1", 1000, 50, {1.0, 0.8, 0.3, 0.9}));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, SnapshotAlert::Kind::CoverageRegression);
  EXPECT_NE(alerts[0].message.find("rule coverage"), std::string::npos);
}

TEST(SnapshotMonitorTest, FlagsRuleCountShift) {
  SnapshotMonitor monitor;
  (void)monitor.record(stats("day0", 1000, 100, {1, 1, 1, 1}));
  const auto alerts = monitor.record(stats("day1", 1000, 30, {1, 1, 1, 1}));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, SnapshotAlert::Kind::RuleCountShift);
}

TEST(SnapshotMonitorTest, ImprovementsNeverAlert) {
  SnapshotMonitor monitor;
  (void)monitor.record(stats("day0", 1000, 50, {0.5, 0.5, 0.5, 0.5}));
  EXPECT_TRUE(monitor.record(stats("day1", 1000, 50, {0.9, 0.9, 0.9, 0.9})).empty());
}

TEST(CoverageRegressionsTest, ComparesRolesToo) {
  CoverageReport before, after;
  before.overall = {1.0, 0.8, 0.6, 0.9};
  after.overall = {1.0, 0.8, 0.6, 0.9};
  RoleBreakdown tor;
  tor.role = net::Role::ToR;
  tor.metrics = {1.0, 0.5, 0.5, 0.9};
  before.by_role.push_back(tor);
  tor.metrics.interface_fractional = 0.2;
  after.by_role.push_back(tor);
  const auto regressions = coverage_regressions(before, after);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_NE(regressions[0].find("ToR"), std::string::npos);
  EXPECT_NE(regressions[0].find("interface"), std::string::npos);
}

// --- Trace persistence ---

class PersistTest : public ::testing::Test {
 protected:
  PersistTest() : tiny_(make_tiny()) {}
  bdd::BddManager mgr_{packet::kNumHeaderBits};
  TinyNetwork tiny_;
};

TEST_F(PersistTest, RoundTripPreservesCoverage) {
  coverage::CoverageTrace trace;
  trace.mark_packet(net::to_location(tiny_.l1_host),
                    PacketSet::dst_prefix(mgr_, tiny_.p2));
  trace.mark_packet(net::device_location(tiny_.spine),
                    PacketSet::dst_prefix(mgr_, Ipv4Prefix::parse("10.0.0.0/14"))
                        .intersect(PacketSet::field_equals(mgr_, packet::Field::Proto, 6)));
  trace.mark_rule(tiny_.sp_to_p1);
  trace.mark_rule(tiny_.l2_default);

  const std::string text = serialize_trace(trace, mgr_);

  // Load into a *fresh* manager: coverage numbers must be identical.
  bdd::BddManager mgr2(packet::kNumHeaderBits);
  const coverage::CoverageTrace loaded = deserialize_trace(text, mgr2);
  EXPECT_EQ(loaded.marked_rules(), trace.marked_rules());

  const CoverageEngine original(mgr_, tiny_.net, trace);
  const CoverageEngine restored(mgr2, tiny_.net, loaded);
  for (const net::Rule& r : tiny_.net.rules()) {
    EXPECT_DOUBLE_EQ(original.rule_coverage(r.id), restored.rule_coverage(r.id))
        << r.to_string();
  }
}

TEST_F(PersistTest, EmptyTraceRoundTrips) {
  const coverage::CoverageTrace empty;
  bdd::BddManager mgr2(packet::kNumHeaderBits);
  const coverage::CoverageTrace loaded =
      deserialize_trace(serialize_trace(empty, mgr_), mgr2);
  EXPECT_TRUE(loaded.marked_packets().empty());
  EXPECT_TRUE(loaded.marked_rules().empty());
}

TEST_F(PersistTest, SharedNodesSerializedOnce) {
  // The same packet set at two locations shares all nodes in the file.
  coverage::CoverageTrace trace;
  const PacketSet ps = PacketSet::dst_prefix(mgr_, tiny_.p1);
  trace.mark_packet(net::to_location(tiny_.l1_host), ps);
  trace.mark_packet(net::to_location(tiny_.l2_host), ps);
  const std::string once = serialize_trace(trace, mgr_);

  coverage::CoverageTrace single;
  single.mark_packet(net::to_location(tiny_.l1_host), ps);
  const std::string one_loc = serialize_trace(single, mgr_);

  // Same node count line in both files.
  EXPECT_EQ(once.substr(0, once.find('\n', 20)),
            one_loc.substr(0, one_loc.find('\n', 20)));
}

TEST_F(PersistTest, RejectsMalformedInput) {
  bdd::BddManager mgr2(packet::kNumHeaderBits);
  EXPECT_THROW(deserialize_trace("garbage", mgr2), std::runtime_error);
  EXPECT_THROW(deserialize_trace("yardstick-trace v1\nnodes 1\n", mgr2),
               std::runtime_error);
  EXPECT_THROW(
      deserialize_trace("yardstick-trace v1\nnodes 1\n0 5 5\nrules 0\nlocations 0\n",
                        mgr2),
      std::runtime_error);  // forward reference
  EXPECT_THROW(
      deserialize_trace("yardstick-trace v1\nnodes 1\n999 0 1\nrules 0\nlocations 0\n",
                        mgr2),
      std::runtime_error);  // variable out of range
}

TEST_F(PersistTest, FileRoundTrip) {
  coverage::CoverageTrace trace;
  trace.mark_packet(net::to_location(tiny_.l1_host),
                    PacketSet::dst_prefix(mgr_, tiny_.p1));
  const std::string path = ::testing::TempDir() + "/yardstick_trace_test.txt";
  save_trace(path, trace, mgr_);
  bdd::BddManager mgr2(packet::kNumHeaderBits);
  const coverage::CoverageTrace loaded = load_trace(path, mgr2);
  EXPECT_EQ(loaded.marked_packets().count(), trace.marked_packets().count());
  std::remove(path.c_str());
  EXPECT_THROW(load_trace(path + ".nope", mgr2), std::runtime_error);
}

// --- JSON export ---

TEST(JsonTest, ReportSerializes) {
  CoverageReport report;
  report.overall = {1.0, 0.5, 0.25, 0.75};
  RoleBreakdown row;
  row.role = net::Role::ToR;
  row.device_count = 4;
  row.rule_count = 40;
  row.interface_count = 12;
  row.metrics = {1.0, 0.25, 0.1, 0.9};
  report.by_role.push_back(row);
  report.gaps.push_back({net::RouteKind::WideArea, 7, 7});
  report.untested_interface_count = 3;

  const std::string json = report_to_json(report);
  EXPECT_NE(json.find("\"overall\""), std::string::npos);
  EXPECT_NE(json.find("\"role\":\"ToR\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"wide-area\""), std::string::npos);
  EXPECT_NE(json.find("\"untested_interfaces\":3"), std::string::npos);
  EXPECT_NE(json.find("\"rule_fractional\":0.25"), std::string::npos);
}

TEST(JsonTest, ResultsSerializeWithEscaping) {
  nettest::TestResult r;
  r.name = "Check \"quoted\"\nname";
  r.category = nettest::TestCategory::EndToEndSymbolic;
  r.checks = 5;
  r.fail("bad \\ path");
  const std::string json = results_to_json({r});
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("bad \\\\ path"), std::string::npos);
  EXPECT_NE(json.find("\"passed\":false"), std::string::npos);
  EXPECT_NE(json.find("end-to-end-symbolic"), std::string::npos);
}

TEST(JsonTest, EmptyResults) {
  EXPECT_EQ(results_to_json({}), "[]");
}

}  // namespace
}  // namespace yardstick::ys
