// Tests for the coverage core: trace, Algorithm 1 covered sets, the
// (G, µ, κ, α) framework, and the §3.2 metric properties — monotonicity,
// boundedness, compositionality, and semantics-basedness.
#include <gtest/gtest.h>

#include "coverage/components.hpp"
#include "coverage/covered_sets.hpp"
#include "coverage/framework.hpp"
#include "coverage/trace.hpp"
#include "test_util.hpp"

namespace yardstick::coverage {
namespace {

using dataplane::MatchSetIndex;
using dataplane::Transfer;
using packet::Ipv4Prefix;
using packet::PacketSet;
using testutil::make_tiny;
using testutil::packet_to;
using testutil::TinyNetwork;

class CoverageTest : public ::testing::Test {
 protected:
  CoverageTest() : tiny_(make_tiny()), index_(mgr_, tiny_.net), transfer_(index_) {}

  [[nodiscard]] PacketSet dst(const Ipv4Prefix& p) const {
    return PacketSet::dst_prefix(const_cast<bdd::BddManager&>(mgr_), p);
  }

  bdd::BddManager mgr_{packet::kNumHeaderBits};
  TinyNetwork tiny_;
  MatchSetIndex index_;
  Transfer transfer_;
};

// --- Trace and Algorithm 1 ---

TEST_F(CoverageTest, EmptyTraceCoversNothing) {
  const CoverageTrace trace;
  const CoveredSets covered(index_, trace);
  for (const net::Rule& r : tiny_.net.rules()) {
    EXPECT_TRUE(covered.covered(r.id).empty());
  }
}

TEST_F(CoverageTest, MarkRuleCoversFullMatchSet) {
  CoverageTrace trace;
  trace.mark_rule(tiny_.l1_default);
  const CoveredSets covered(index_, trace);
  EXPECT_EQ(covered.covered(tiny_.l1_default), index_.match_set(tiny_.l1_default));
  EXPECT_TRUE(covered.covered(tiny_.l1_to_p1).empty());
}

TEST_F(CoverageTest, MarkPacketCoversIntersectionWithMatchSet) {
  CoverageTrace trace;
  // Packets to p2 reported at leaf1's host port.
  trace.mark_packet(net::to_location(tiny_.l1_host), dst(tiny_.p2));
  const CoveredSets covered(index_, trace);
  EXPECT_EQ(covered.covered(tiny_.l1_to_p2), dst(tiny_.p2));
  EXPECT_TRUE(covered.covered(tiny_.l1_to_p1).empty());
  EXPECT_TRUE(covered.covered(tiny_.l1_default).empty());
  // Rules on other devices are untouched: the packets were only at leaf1.
  EXPECT_TRUE(covered.covered(tiny_.sp_to_p2).empty());
}

TEST_F(CoverageTest, DeviceLocalInjectionCoversDeviceRules) {
  CoverageTrace trace;
  trace.mark_packet(net::device_location(tiny_.spine), dst(tiny_.p1));
  const CoveredSets covered(index_, trace);
  EXPECT_EQ(covered.covered(tiny_.sp_to_p1), dst(tiny_.p1));
  EXPECT_TRUE(covered.covered(tiny_.l1_to_p1).empty());
}

TEST_F(CoverageTest, TraceUnionsDuplicateMarks) {
  CoverageTrace trace;
  trace.mark_packet(net::to_location(tiny_.l1_host), dst(tiny_.p1));
  trace.mark_packet(net::to_location(tiny_.l1_host), dst(tiny_.p1));
  trace.mark_packet(net::to_location(tiny_.l1_host), dst(tiny_.p2));
  EXPECT_EQ(trace.marked_packets().at(net::to_location(tiny_.l1_host)),
            dst(tiny_.p1).union_with(dst(tiny_.p2)));
}

TEST_F(CoverageTest, TraceMergeEqualsCombinedCalls) {
  CoverageTrace a, b, combined;
  a.mark_packet(net::to_location(tiny_.l1_host), dst(tiny_.p1));
  a.mark_rule(tiny_.sp_to_p1);
  b.mark_packet(net::to_location(tiny_.l2_host), dst(tiny_.p2));
  combined.mark_packet(net::to_location(tiny_.l1_host), dst(tiny_.p1));
  combined.mark_rule(tiny_.sp_to_p1);
  combined.mark_packet(net::to_location(tiny_.l2_host), dst(tiny_.p2));
  a.merge(b);
  EXPECT_EQ(a.marked_packets(), combined.marked_packets());
  EXPECT_EQ(a.marked_rules(), combined.marked_rules());
}

TEST_F(CoverageTest, CoveredOnInterfaceRestrictsGuard) {
  CoverageTrace trace;
  trace.mark_packet(net::to_location(tiny_.l1_host), dst(tiny_.p2));
  const CoveredSets covered(index_, trace);
  EXPECT_EQ(covered.covered_on_interface(tiny_.l1_to_p2, tiny_.l1_host), dst(tiny_.p2));
  EXPECT_TRUE(covered.covered_on_interface(tiny_.l1_to_p2, tiny_.l1_up).empty());
  // State-inspected rules count in full on any interface.
  CoverageTrace inspect;
  inspect.mark_rule(tiny_.l1_to_p2);
  const CoveredSets covered2(index_, inspect);
  EXPECT_EQ(covered2.covered_on_interface(tiny_.l1_to_p2, tiny_.l1_up),
            index_.match_set(tiny_.l1_to_p2));
}

// --- Measures, combinators, aggregators ---

TEST_F(CoverageTest, FractionMeasure) {
  CoverageTrace trace;
  // Half of p1 (a /25 of the /24).
  trace.mark_packet(net::device_location(tiny_.leaf1),
                    dst(Ipv4Prefix::parse("10.0.1.0/25")));
  const CoveredSets covered(index_, trace);
  const ComponentFactory factory(transfer_);
  EXPECT_DOUBLE_EQ(component_coverage(covered, factory.rule(tiny_.l1_to_p1)), 0.5);
  EXPECT_DOUBLE_EQ(component_coverage(covered, factory.rule(tiny_.l1_to_p2)), 0.0);
}

TEST_F(CoverageTest, ExistsMeasure) {
  CoverageTrace trace;
  trace.mark_packet(net::device_location(tiny_.leaf1),
                    PacketSet::from_packet(mgr_, packet_to(tiny_.p1)));
  const CoveredSets covered(index_, trace);
  const ComponentFactory factory(transfer_);
  ComponentSpec spec = factory.rule(tiny_.l1_to_p1);
  spec.measure = exists_measure();
  EXPECT_DOUBLE_EQ(component_coverage(covered, spec), 1.0);
  ComponentSpec other = factory.rule(tiny_.l1_to_p2);
  other.measure = exists_measure();
  EXPECT_DOUBLE_EQ(component_coverage(covered, other), 0.0);
}

TEST_F(CoverageTest, CombinatorBehaviors) {
  const std::vector<MeasureResult> results{{0.2, 100}, {1.0, 300}};
  EXPECT_DOUBLE_EQ(mean_combinator()(results), 0.6);
  EXPECT_DOUBLE_EQ(weighted_mean_combinator()(results), (0.2 * 100 + 1.0 * 300) / 400);
  EXPECT_DOUBLE_EQ(min_combinator()(results), 0.2);
  EXPECT_DOUBLE_EQ(max_combinator()(results), 1.0);
  EXPECT_DOUBLE_EQ(single_combinator()({{0.7, 1}}), 0.7);
}

TEST_F(CoverageTest, AggregatorBehaviors) {
  const std::vector<ComponentCoverage> comps{{0.0, 50}, {0.5, 100}, {1.0, 50}};
  EXPECT_DOUBLE_EQ(simple_average_aggregator()(comps), 0.5);
  EXPECT_DOUBLE_EQ(weighted_average_aggregator()(comps), (0.5 * 100 + 1.0 * 50) / 200);
  EXPECT_NEAR(fractional_aggregator()(comps), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(fractional_aggregator()({}), 1.0);
}

TEST_F(CoverageTest, DeviceCoverageIsWeightedByMatchSets) {
  CoverageTrace trace;
  trace.mark_rule(tiny_.sp_default_drop);  // the huge match set
  const CoveredSets covered(index_, trace);
  const ComponentFactory factory(transfer_);
  const double dev_cov = component_coverage(covered, factory.device(tiny_.spine));
  // Weighted: default dominates the space -> close to 1.
  EXPECT_GT(dev_cov, 0.99);
  EXPECT_LT(dev_cov, 1.0);
}

TEST_F(CoverageTest, OutgoingInterfaceCoverage) {
  CoverageTrace trace;
  trace.mark_packet(net::device_location(tiny_.leaf1), dst(tiny_.p2));
  const CoveredSets covered(index_, trace);
  const ComponentFactory factory(transfer_);
  // l1_up carries the p2 rule (covered in full) and the default rule
  // (uncovered): weighted mean is tiny but non-zero.
  const double up = component_coverage(
      covered, factory.interface(tiny_.l1_up, InterfaceDirection::Outgoing));
  EXPECT_GT(up, 0.0);
  EXPECT_LT(up, 0.01);
  // Host port only carries the p1 rule: fully uncovered.
  const double host = component_coverage(
      covered, factory.interface(tiny_.l1_host, InterfaceDirection::Outgoing));
  EXPECT_DOUBLE_EQ(host, 0.0);
}

TEST_F(CoverageTest, IncomingInterfaceCoverage) {
  CoverageTrace trace;
  trace.mark_packet(net::to_location(tiny_.sp_d1), dst(tiny_.p2));
  const CoveredSets covered(index_, trace);
  const ComponentFactory factory(transfer_);
  const double in_d1 = component_coverage(
      covered, factory.interface(tiny_.sp_d1, InterfaceDirection::Incoming));
  EXPECT_GT(in_d1, 0.0);
  const double in_d2 = component_coverage(
      covered, factory.interface(tiny_.sp_d2, InterfaceDirection::Incoming));
  EXPECT_DOUBLE_EQ(in_d2, 0.0);
}

// --- §3.2 properties ---

TEST_F(CoverageTest, MonotonicityUnderAddedTests) {
  const ComponentFactory factory(transfer_);
  CoverageTrace trace;
  std::vector<double> rule_frac, rule_weighted, dev_frac;
  const auto snapshot = [&] {
    const CoveredSets covered(index_, trace);
    rule_frac.push_back(
        collection_coverage(covered, factory.all_rules(), fractional_aggregator()));
    rule_weighted.push_back(collection_coverage(covered, factory.all_rules(),
                                                weighted_average_aggregator()));
    dev_frac.push_back(
        collection_coverage(covered, factory.all_devices(), fractional_aggregator()));
  };
  snapshot();
  trace.mark_packet(net::to_location(tiny_.l1_host), dst(tiny_.p2));
  snapshot();
  trace.mark_rule(tiny_.sp_default_drop);
  snapshot();
  trace.mark_packet(net::device_location(tiny_.leaf2), dst(tiny_.p1));
  snapshot();
  for (const auto& series : {rule_frac, rule_weighted, dev_frac}) {
    for (size_t i = 1; i < series.size(); ++i) {
      EXPECT_GE(series[i], series[i - 1] - 1e-12);
    }
  }
}

TEST_F(CoverageTest, BoundednessZeroAndOne) {
  const ComponentFactory factory(transfer_);
  // No tests: everything 0.
  const CoverageTrace empty;
  const CoveredSets none(index_, empty);
  EXPECT_DOUBLE_EQ(
      collection_coverage(none, factory.all_rules(), weighted_average_aggregator()), 0.0);

  // Inspect every rule: everything 1.
  CoverageTrace full;
  for (const net::Rule& r : tiny_.net.rules()) full.mark_rule(r.id);
  const CoveredSets all(index_, full);
  EXPECT_DOUBLE_EQ(
      collection_coverage(all, factory.all_rules(), weighted_average_aggregator()), 1.0);
  EXPECT_DOUBLE_EQ(
      collection_coverage(all, factory.all_rules(), fractional_aggregator()), 1.0);
  EXPECT_DOUBLE_EQ(
      collection_coverage(all, factory.all_devices(), simple_average_aggregator()), 1.0);
}

TEST_F(CoverageTest, CompositionalitySymbolicEqualsUnionOfConcrete) {
  // A symbolic test over a /30 (4 packets x other fields fixed) must yield
  // exactly the coverage of the 4 concrete tests enumerating it.
  const Ipv4Prefix block = Ipv4Prefix::parse("10.0.1.8/30");
  PacketSet fixed_rest = PacketSet::src_prefix(mgr_, Ipv4Prefix::parse("9.9.9.9/32"))
                             .intersect(PacketSet::field_equals(mgr_, packet::Field::Proto, 6))
                             .intersect(PacketSet::field_equals(mgr_, packet::Field::SrcPort, 1))
                             .intersect(PacketSet::field_equals(mgr_, packet::Field::DstPort, 2));

  CoverageTrace symbolic;
  symbolic.mark_packet(net::to_location(tiny_.l1_host),
                       dst(block).intersect(fixed_rest));

  CoverageTrace concrete;
  for (uint32_t i = 0; i < 4; ++i) {
    packet::ConcretePacket p;
    p.dst_ip = block.first() + i;
    p.src_ip = 0x09090909u;
    p.proto = 6;
    p.src_port = 1;
    p.dst_port = 2;
    concrete.mark_packet(net::to_location(tiny_.l1_host), PacketSet::from_packet(mgr_, p));
  }

  const CoveredSets cs_sym(index_, symbolic);
  const CoveredSets cs_conc(index_, concrete);
  for (const net::Rule& r : tiny_.net.rules()) {
    EXPECT_EQ(cs_sym.covered(r.id), cs_conc.covered(r.id)) << r.to_string();
  }
}

TEST_F(CoverageTest, CompositionalityInspectionEqualsFullSymbolic) {
  // A state-inspection of rule r must equal a symbolic test that reports
  // the rule's whole match set at the device.
  CoverageTrace inspect;
  inspect.mark_rule(tiny_.sp_to_p1);
  CoverageTrace symbolic;
  symbolic.mark_packet(net::device_location(tiny_.spine), index_.match_set(tiny_.sp_to_p1));

  const CoveredSets a(index_, inspect);
  const CoveredSets b(index_, symbolic);
  for (const net::Rule& r : tiny_.net.rules()) {
    EXPECT_EQ(a.covered(r.id), b.covered(r.id));
  }
}

TEST_F(CoverageTest, SemanticsBasedDefaultRoutePacketCoversOnlyDefaultRule) {
  // A packet matching the default route exercises only the default rule,
  // never the more-specific entries the device implementation might scan.
  CoverageTrace trace;
  trace.mark_packet(net::device_location(tiny_.leaf1),
                    PacketSet::from_packet(mgr_, packet_to(Ipv4Prefix::parse("99.0.0.0/8"))));
  const CoveredSets covered(index_, trace);
  EXPECT_FALSE(covered.covered(tiny_.l1_default).empty());
  EXPECT_TRUE(covered.covered(tiny_.l1_to_p1).empty());
  EXPECT_TRUE(covered.covered(tiny_.l1_to_p2).empty());
}

TEST_F(CoverageTest, VacuousRulesDoNotCapCoverage) {
  // Add a fully shadowed rule; inspecting everything else must still reach
  // coverage 1.0 (boundedness: the maximum corresponds to "no further test
  // can increase the value").
  net::Network& n = tiny_.net;
  n.add_rule(tiny_.leaf1, net::MatchSpec::for_dst(Ipv4Prefix::parse("10.0.1.1/32")),
             net::Action::drop(), net::RouteKind::Other, 99);
  const MatchSetIndex fresh(mgr_, n);
  const Transfer transfer(fresh);
  const ComponentFactory factory(transfer);
  CoverageTrace full;
  for (const net::Rule& r : n.rules()) full.mark_rule(r.id);
  const CoveredSets covered(fresh, full);
  EXPECT_DOUBLE_EQ(
      collection_coverage(covered, factory.all_rules(), fractional_aggregator()), 1.0);
}

}  // namespace
}  // namespace yardstick::coverage
