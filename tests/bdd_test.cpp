// Unit and property tests for the ROBDD engine.
#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd.hpp"

namespace yardstick::bdd {
namespace {

class BddTest : public ::testing::Test {
 protected:
  BddManager mgr{8};
};

TEST_F(BddTest, TerminalsAreDistinct) {
  EXPECT_TRUE(mgr.zero().is_false());
  EXPECT_TRUE(mgr.one().is_true());
  EXPECT_NE(mgr.zero(), mgr.one());
}

TEST_F(BddTest, VarAndNvarAreComplements) {
  for (Var v = 0; v < 8; ++v) {
    EXPECT_EQ(!mgr.var(v), mgr.nvar(v));
    EXPECT_EQ((mgr.var(v) | mgr.nvar(v)), mgr.one());
    EXPECT_EQ((mgr.var(v) & mgr.nvar(v)), mgr.zero());
  }
}

TEST_F(BddTest, HashConsingGivesCanonicity) {
  const Bdd a = mgr.var(0) & mgr.var(1);
  const Bdd b = mgr.var(1) & mgr.var(0);
  EXPECT_EQ(a, b);  // same function => same node index
  const Bdd c = (mgr.var(0) | mgr.var(1)) & (mgr.var(0) | !mgr.var(1));
  EXPECT_EQ(c, mgr.var(0));
}

TEST_F(BddTest, DoubleNegation) {
  const Bdd f = (mgr.var(0) & mgr.var(2)) | mgr.nvar(5);
  EXPECT_EQ(!!f, f);
}

TEST_F(BddTest, DeMorgan) {
  const Bdd a = mgr.var(1) | (mgr.var(3) & mgr.var(4));
  const Bdd b = mgr.var(2) & mgr.nvar(6);
  EXPECT_EQ(!(a & b), (!a | !b));
  EXPECT_EQ(!(a | b), (!a & !b));
}

TEST_F(BddTest, AbsorptionAndIdempotence) {
  const Bdd a = mgr.var(0) ^ mgr.var(3);
  const Bdd b = mgr.var(1) & mgr.var(2);
  EXPECT_EQ((a & (a | b)), a);
  EXPECT_EQ((a | (a & b)), a);
  EXPECT_EQ((a & a), a);
  EXPECT_EQ((a | a), a);
}

TEST_F(BddTest, DifferenceSemantics) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  EXPECT_EQ(a - b, a & !b);
  EXPECT_EQ(a - a, mgr.zero());
  EXPECT_EQ(a - mgr.zero(), a);
  EXPECT_EQ(a - mgr.one(), mgr.zero());
}

TEST_F(BddTest, XorProperties) {
  const Bdd a = mgr.var(2) | mgr.var(4);
  const Bdd b = mgr.var(3);
  EXPECT_EQ(a ^ a, mgr.zero());
  EXPECT_EQ(a ^ mgr.zero(), a);
  EXPECT_EQ(a ^ mgr.one(), !a);
  EXPECT_EQ(a ^ b, (a - b) | (b - a));
}

TEST_F(BddTest, CountTerminals) {
  EXPECT_EQ(mgr.zero().count(), Uint128{0});
  EXPECT_EQ(mgr.one().count(), pow2(8));
}

TEST_F(BddTest, CountSingleVariable) {
  EXPECT_EQ(mgr.var(0).count(), pow2(7));
  EXPECT_EQ(mgr.var(7).count(), pow2(7));
  EXPECT_EQ(mgr.nvar(3).count(), pow2(7));
}

TEST_F(BddTest, CountInclusionExclusion) {
  const Bdd a = mgr.var(0) & mgr.var(1);
  const Bdd b = mgr.var(1) & mgr.var(2);
  EXPECT_EQ((a | b).count() + (a & b).count(), a.count() + b.count());
}

TEST_F(BddTest, CountComplement) {
  const Bdd f = (mgr.var(0) & mgr.var(5)) | mgr.var(2);
  EXPECT_EQ(f.count() + (!f).count(), pow2(8));
}

TEST_F(BddTest, CubeCountsOnePoint) {
  std::vector<Var> vars{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<bool> bits{true, false, true, true, false, false, true, false};
  const Bdd cube = mgr.cube(vars, bits);
  EXPECT_EQ(cube.count(), Uint128{1});
  EXPECT_TRUE(mgr.evaluate(cube, bits));
  bits[4] = true;
  EXPECT_FALSE(mgr.evaluate(cube, bits));
}

TEST_F(BddTest, PartialCubeCount) {
  std::vector<Var> vars{1, 6};
  std::vector<bool> bits{true, false};
  EXPECT_EQ(mgr.cube(vars, bits).count(), pow2(6));
}

TEST_F(BddTest, PickOneSatisfies) {
  const Bdd f = (mgr.var(0) & !mgr.var(3)) | (mgr.var(5) & mgr.var(6));
  const std::vector<bool> assignment = mgr.pick_one(f);
  EXPECT_TRUE(mgr.evaluate(f, assignment));
}

TEST_F(BddTest, SupportFindsDependencies) {
  const Bdd f = (mgr.var(1) & mgr.var(4)) | mgr.var(6);
  EXPECT_EQ(mgr.support(f), (std::vector<Var>{1, 4, 6}));
  // x2 appears syntactically but cancels semantically.
  const Bdd g = (mgr.var(2) & mgr.var(0)) | (!mgr.var(2) & mgr.var(0));
  EXPECT_EQ(mgr.support(g), (std::vector<Var>{0}));
}

TEST_F(BddTest, ExistsRemovesVariable) {
  const Bdd f = mgr.var(0) & mgr.var(1);
  std::vector<bool> quantified(8, false);
  quantified[0] = true;
  EXPECT_EQ(mgr.exists(f, quantified), mgr.var(1));
  // Quantifying an irrelevant variable is the identity.
  std::vector<bool> other(8, false);
  other[7] = true;
  EXPECT_EQ(mgr.exists(f, other), f);
}

TEST_F(BddTest, ExistsIsDisjunctionOfCofactors) {
  const Bdd f = (mgr.var(2) & mgr.var(3)) | (!mgr.var(2) & mgr.var(5));
  std::vector<bool> quantified(8, false);
  quantified[2] = true;
  EXPECT_EQ(mgr.exists(f, quantified),
            mgr.restrict_var(f, 2, false) | mgr.restrict_var(f, 2, true));
}

TEST_F(BddTest, RestrictCofactors) {
  const Bdd f = (mgr.var(0) & mgr.var(1)) | (!mgr.var(0) & mgr.var(2));
  EXPECT_EQ(mgr.restrict_var(f, 0, true), mgr.var(1));
  EXPECT_EQ(mgr.restrict_var(f, 0, false), mgr.var(2));
}

TEST_F(BddTest, ImpliesIsSubset) {
  const Bdd narrow = mgr.var(0) & mgr.var(1) & mgr.var(2);
  const Bdd wide = mgr.var(0);
  EXPECT_TRUE(narrow.implies(wide));
  EXPECT_FALSE(wide.implies(narrow));
  EXPECT_TRUE(mgr.zero().implies(narrow));
  EXPECT_TRUE(narrow.implies(mgr.one()));
}

TEST_F(BddTest, NodeCountReduced) {
  // x0 & x1 has two decision nodes + two terminals.
  EXPECT_EQ((mgr.var(0) & mgr.var(1)).node_count(), 4u);
  EXPECT_EQ(mgr.one().node_count(), 1u);
}

TEST_F(BddTest, ToDotMentionsVariables) {
  const std::string dot = mgr.to_dot(mgr.var(3) & mgr.var(5));
  EXPECT_NE(dot.find("x3"), std::string::npos);
  EXPECT_NE(dot.find("x5"), std::string::npos);
}

TEST(BddManagerTest, RejectsTooManyVariables) {
  EXPECT_THROW(BddManager{121}, std::invalid_argument);
  EXPECT_NO_THROW(BddManager{120});
}

TEST(BddManagerTest, WideCountUses128Bits) {
  BddManager mgr(104);
  EXPECT_EQ(mgr.one().count(), pow2(104));
  EXPECT_EQ(mgr.var(0).count(), pow2(103));
  EXPECT_EQ(to_string(pow2(104)), "20282409603651670423947251286016");
}

TEST(BddManagerTest, CacheAblationProducesSameResults) {
  BddManager with_cache(16);
  BddManager without_cache(16);
  without_cache.set_cache_enabled(false);

  std::mt19937 rng(7);
  const auto random_fn = [&rng](BddManager& m) {
    Bdd acc = m.zero();
    std::mt19937 local(42);
    for (int i = 0; i < 24; ++i) {
      const Var v1 = local() % 16;
      const Var v2 = local() % 16;
      acc = acc | (m.var(v1) & m.nvar(v2));
    }
    return acc;
  };
  (void)rng;
  EXPECT_EQ(random_fn(with_cache).count(), random_fn(without_cache).count());
  EXPECT_GT(with_cache.cache_stats().hits, 0u);
}

// Randomized law checking: build random expressions two ways and compare
// against brute-force evaluation over all 2^10 assignments.
class BddRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BddRandomTest, MatchesBruteForceEvaluation) {
  BddManager mgr(10);
  std::mt19937 rng(GetParam());

  // Random expression tree over literals.
  std::vector<Bdd> pool;
  for (Var v = 0; v < 10; ++v) {
    pool.push_back(mgr.var(v));
    pool.push_back(mgr.nvar(v));
  }
  for (int step = 0; step < 30; ++step) {
    const Bdd a = pool[rng() % pool.size()];
    const Bdd b = pool[rng() % pool.size()];
    switch (rng() % 4) {
      case 0: pool.push_back(a & b); break;
      case 1: pool.push_back(a | b); break;
      case 2: pool.push_back(a ^ b); break;
      default: pool.push_back(a - b); break;
    }
  }
  const Bdd f = pool.back();

  // Count satisfying assignments by enumeration and compare.
  uint64_t brute = 0;
  std::vector<bool> assignment(10, false);
  for (uint32_t bits = 0; bits < (1u << 10); ++bits) {
    for (int i = 0; i < 10; ++i) assignment[i] = (bits >> i) & 1;
    if (mgr.evaluate(f, assignment)) ++brute;
  }
  EXPECT_EQ(f.count(), Uint128{brute});
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRandomTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace yardstick::bdd
