// Integration test reproducing the §7 case-study *shapes* on the synthetic
// regional network: the original suite's blind spots (Fig. 6a), the
// improvements from InternalRouteCheck and ConnectedRouteCheck
// (Fig. 6b-d), and the overall improvement (Fig. 7).
#include <gtest/gtest.h>

#include "nettest/contract_checks.hpp"
#include "nettest/state_checks.hpp"
#include "routing/fib_builder.hpp"
#include "topo/regional.hpp"
#include "yardstick/engine.hpp"

namespace yardstick {
namespace {

using nettest::AggCanReachTorLoopback;
using nettest::ConnectedRouteCheck;
using nettest::DefaultRouteCheck;
using nettest::InternalRouteCheck;

class CaseStudyTest : public ::testing::Test {
 protected:
  CaseStudyTest() : region_(topo::make_regional({})) {
    routing::FibBuilder::compute_and_build(region_.network, region_.routing);
    index_.emplace(mgr_, region_.network);
    transfer_.emplace(*index_);
  }

  [[nodiscard]] ys::CoverageReport run_suite(bool with_internal, bool with_connected) {
    ys::CoverageTracker tracker;
    const std::unordered_set<net::DeviceId> excluded(
        region_.routing.no_default_devices.begin(),
        region_.routing.no_default_devices.end());
    nettest::TestSuite suite("case-study");
    suite.add(std::make_unique<DefaultRouteCheck>(excluded));
    suite.add(std::make_unique<AggCanReachTorLoopback>());
    if (with_internal) suite.add(std::make_unique<InternalRouteCheck>());
    if (with_connected) suite.add(std::make_unique<ConnectedRouteCheck>());
    const auto results = suite.run_all(*transfer_, tracker);
    for (const auto& r : results) {
      EXPECT_TRUE(r.passed()) << r.name << ": "
                              << (r.failure_messages.empty() ? ""
                                                             : r.failure_messages.front());
    }
    const ys::CoverageEngine engine(mgr_, region_.network, tracker.trace());
    return engine.report();
  }

  [[nodiscard]] const ys::RoleBreakdown& row(const ys::CoverageReport& report,
                                             net::Role role) const {
    for (const auto& r : report.by_role) {
      if (r.role == role) return r;
    }
    ADD_FAILURE() << "role missing from report";
    static ys::RoleBreakdown empty;
    return empty;
  }

  bdd::BddManager mgr_{packet::kNumHeaderBits};
  topo::RegionalNetwork region_;
  std::optional<dataplane::MatchSetIndex> index_;
  std::optional<dataplane::Transfer> transfer_;
};

TEST_F(CaseStudyTest, OriginalSuiteShape) {
  const ys::CoverageReport report = run_suite(false, false);

  // Fig. 6a: device fractional coverage close to perfect for all roles
  // (DefaultRouteCheck touches every device), slightly lower for hubs
  // because some hubs are excluded from the check.
  for (const net::Role role : {net::Role::ToR, net::Role::Aggregation, net::Role::Spine}) {
    EXPECT_DOUBLE_EQ(row(report, role).metrics.device_fractional, 1.0)
        << to_string(role);
  }
  EXPECT_LT(row(report, net::Role::RegionalHub).metrics.device_fractional, 1.0);
  EXPECT_GT(row(report, net::Role::RegionalHub).metrics.device_fractional, 0.5);

  // Interface coverage high only for aggregation routers (the loopback
  // test exercises their ToR-facing rules; the default only the northern
  // ports).
  const double agg_iface = row(report, net::Role::Aggregation).metrics.interface_fractional;
  for (const net::Role role : {net::Role::ToR, net::Role::Spine, net::Role::RegionalHub}) {
    EXPECT_LT(row(report, role).metrics.interface_fractional, agg_iface)
        << to_string(role);
  }

  // Fractional rule coverage is very low everywhere; weighted rule
  // coverage is high (the default route dominates the address space).
  EXPECT_LT(report.overall.rule_fractional, 0.15);
  for (const auto& r : report.by_role) {
    if (r.role == net::Role::Wan) continue;
    EXPECT_GT(r.metrics.rule_weighted, 0.9) << to_string(r.role);
  }
}

TEST_F(CaseStudyTest, InternalRouteCheckClosesInternalGap) {
  const ys::CoverageReport before = run_suite(false, false);
  const ys::CoverageReport after = run_suite(true, false);

  // Fig. 6b: ToR and aggregation rules are mostly internal -> coverage
  // jumps above 90%; spines/hubs carry wide-area + connected rules too ->
  // mid-range.
  EXPECT_GT(row(after, net::Role::ToR).metrics.rule_fractional, 0.9);
  EXPECT_GT(row(after, net::Role::Aggregation).metrics.rule_fractional, 0.9);
  EXPECT_LT(row(after, net::Role::Spine).metrics.rule_fractional, 0.9);
  EXPECT_GT(row(after, net::Role::Spine).metrics.rule_fractional,
            row(before, net::Role::Spine).metrics.rule_fractional);

  // Untested wide-area rules remain.
  bool wide_area_gap = false;
  for (const auto& gap : after.gaps) {
    if (gap.kind == net::RouteKind::WideArea) {
      wide_area_gap = gap.untested == gap.total && gap.total > 0;
    }
  }
  EXPECT_TRUE(wide_area_gap);
}

TEST_F(CaseStudyTest, ConnectedRouteCheckClosesInterfaceGap) {
  const ys::CoverageReport before = run_suite(false, false);
  const ys::CoverageReport after = run_suite(false, true);

  // Fig. 6c: connected routes cover nearly all fabric interfaces on
  // non-ToR routers; ToRs keep their untested host ports. Aggregation
  // interfaces were already near-fully covered by the original suite
  // (Fig. 6a), so only >= is required there.
  for (const net::Role role : {net::Role::Spine, net::Role::RegionalHub}) {
    EXPECT_GT(row(after, role).metrics.interface_fractional,
              row(before, role).metrics.interface_fractional)
        << to_string(role);
  }
  for (const net::Role role :
       {net::Role::Aggregation, net::Role::Spine, net::Role::RegionalHub}) {
    EXPECT_GE(row(after, role).metrics.interface_fractional, 0.8) << to_string(role);
  }
  EXPECT_LT(row(after, net::Role::ToR).metrics.interface_fractional, 0.6);
}

TEST_F(CaseStudyTest, FinalSuiteImprovement) {
  const ys::CoverageReport original = run_suite(false, false);
  const ys::CoverageReport final_suite = run_suite(true, true);

  // Fig. 7: large rule-coverage improvement, meaningful interface
  // improvement (paper: +89% rules, +17% interfaces in relative terms).
  EXPECT_GT(final_suite.overall.rule_fractional,
            original.overall.rule_fractional * 1.5);
  EXPECT_GT(final_suite.overall.interface_fractional,
            original.overall.interface_fractional * 1.1);

  // Fig. 6d residuals: spine/hub rule coverage capped by untested
  // wide-area routes; ToR interface coverage stays low (host ports).
  EXPECT_LT(row(final_suite, net::Role::Spine).metrics.rule_fractional, 0.95);
  EXPECT_LT(row(final_suite, net::Role::ToR).metrics.interface_fractional, 0.6);

  // Monotonicity at the report level.
  EXPECT_GE(final_suite.overall.device_fractional, original.overall.device_fractional);
  EXPECT_GE(final_suite.overall.rule_weighted, original.overall.rule_weighted - 1e-12);
}

TEST_F(CaseStudyTest, GapDrilldownFindsCategories) {
  ys::CoverageTracker tracker;
  const std::unordered_set<net::DeviceId> excluded(
      region_.routing.no_default_devices.begin(), region_.routing.no_default_devices.end());
  (void)DefaultRouteCheck(excluded).run(*transfer_, tracker);
  (void)AggCanReachTorLoopback().run(*transfer_, tracker);
  const ys::CoverageEngine engine(mgr_, region_.network, tracker.trace());

  // §7.2: the untested rules decompose into internal, connected and
  // wide-area categories.
  std::map<net::RouteKind, size_t> untested_by_kind;
  for (const net::RuleId rid : engine.untested_rules()) {
    ++untested_by_kind[region_.network.rule(rid).kind];
  }
  EXPECT_GT(untested_by_kind[net::RouteKind::Internal], 0u);
  EXPECT_GT(untested_by_kind[net::RouteKind::Connected], 0u);
  EXPECT_GT(untested_by_kind[net::RouteKind::WideArea], 0u);
  // Every default route the check applies to is tested; the only untested
  // defaults sit on WAN routers (out of the check's scope by design).
  size_t untested_non_wan_defaults = 0;
  for (const net::RuleId rid : engine.untested_rules()) {
    const net::Rule& rule = region_.network.rule(rid);
    if (rule.kind == net::RouteKind::Default &&
        region_.network.device(rule.device).role != net::Role::Wan) {
      ++untested_non_wan_defaults;
    }
  }
  EXPECT_EQ(untested_non_wan_defaults, 0u);
}

}  // namespace
}  // namespace yardstick
