// What-if failure analysis tests: the §2 motivating scenario driven
// through RoutingConfig::failed_devices, plus the LocalForwardCheck
// taxonomy cell.
#include <gtest/gtest.h>

#include "dataplane/simulator.hpp"
#include "nettest/local_forward.hpp"
#include "routing/fib_builder.hpp"
#include "topo/fattree.hpp"
#include "topo/regional.hpp"
#include "yardstick/engine.hpp"

namespace yardstick {
namespace {

using packet::ConcretePacket;
using packet::Ipv4Prefix;

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() : tree_(topo::make_fat_tree({.k = 4})) {
    routing::FibBuilder::compute_and_build(tree_.network, tree_.routing);
  }

  [[nodiscard]] dataplane::ConcreteTrace trace_to(const net::Network& n, net::DeviceId src,
                                                  uint32_t dst_ip) {
    const dataplane::MatchSetIndex index(mgr_, n);
    const dataplane::Transfer transfer(index);
    const dataplane::ConcreteSimulator sim(transfer);
    ConcretePacket pkt;
    pkt.dst_ip = dst_ip;
    return sim.run(src, net::InterfaceId{}, pkt);
  }

  bdd::BddManager mgr_{packet::kNumHeaderBits};
  topo::FatTree tree_;
};

TEST_F(FailureTest, FailedDeviceGetsEmptyFib) {
  tree_.routing.failed_devices.insert(tree_.cores.front());
  routing::FibBuilder::compute_and_build(tree_.network, tree_.routing);
  EXPECT_TRUE(tree_.network.table(tree_.cores.front()).empty());
  EXPECT_FALSE(tree_.network.table(tree_.cores.back()).empty());
}

TEST_F(FailureTest, TrafficRoutesAroundFailedCore) {
  // Fail one core: inter-pod traffic must still be delivered via the rest.
  tree_.routing.failed_devices.insert(tree_.cores.front());
  routing::FibBuilder::compute_and_build(tree_.network, tree_.routing);
  const net::DeviceId dst = tree_.tors.back();
  const auto trace = trace_to(
      tree_.network, tree_.tors.front(),
      tree_.network.device(dst).host_prefixes.front().first() + 1);
  ASSERT_EQ(trace.disposition, dataplane::Disposition::Delivered);
  EXPECT_EQ(tree_.network.interface(trace.egress).device, dst);
  for (const auto& hop : trace.hops) {
    EXPECT_NE(hop.device, tree_.cores.front());
  }
}

TEST_F(FailureTest, StaticDefaultsAvoidFailedNeighbors) {
  tree_.routing.failed_devices.insert(tree_.cores.front());
  routing::FibBuilder::compute_and_build(tree_.network, tree_.routing);
  // Aggs attached to the failed core must not list it as a default next hop.
  for (const net::DeviceId agg : tree_.aggs) {
    for (const net::RuleId rid : tree_.network.table(agg)) {
      const net::Rule& rule = tree_.network.rule(rid);
      if (rule.match.dst_prefix->length() != 0) continue;
      for (const net::InterfaceId out : rule.action.out_interfaces) {
        EXPECT_NE(tree_.network.neighbor(out), tree_.cores.front());
      }
    }
  }
}

TEST_F(FailureTest, MotivatingOutageReplaysViaFailureConfig) {
  // Regional flavor of §2: no fleet static default, one WAN path null
  // routed at a hub; fail the healthy hub and WAN connectivity dies.
  topo::RegionalParams params;
  params.datacenters = 1;
  params.hubs = 2;
  params.wans = 1;
  params.hubs_without_default = 0;
  topo::RegionalNetwork region = topo::make_regional(params);
  region.routing.static_northbound_default = false;
  const net::DeviceId b1 = region.hubs[0];
  const net::DeviceId b2 = region.hubs[1];
  region.routing.null_default_devices.insert(b2);
  routing::FibBuilder::compute_and_build(region.network, region.routing);

  // Healthy: leaves reach the WAN (via B1 only, invisibly).
  const auto ok = trace_to(region.network, region.tors.front(), 0x08080808u);
  EXPECT_EQ(ok.disposition, dataplane::Disposition::Delivered);

  // B1 fails: the whole datacenter loses WAN connectivity despite B2.
  region.routing.failed_devices.insert(b1);
  routing::FibBuilder::compute_and_build(region.network, region.routing);
  const auto broken = trace_to(region.network, region.tors.front(), 0x08080808u);
  EXPECT_NE(broken.disposition, dataplane::Disposition::Delivered);

  // And the pre-failure coverage signal exists: B2's default (the null
  // route) is never exercised by traffic that a reachability test to the
  // WAN would generate. (Replay the healthy state to check.)
  region.routing.failed_devices.clear();
  routing::FibBuilder::compute_and_build(region.network, region.routing);
  bool b2_has_null_default = false;
  for (const net::RuleId rid : region.network.table(b2)) {
    const net::Rule& rule = region.network.rule(rid);
    if (rule.match.dst_prefix->length() == 0) {
      b2_has_null_default = rule.action.type == net::ActionType::Drop;
    }
  }
  EXPECT_TRUE(b2_has_null_default);
}

TEST_F(FailureTest, LocalForwardCheckPassesOnHealthyFatTree) {
  const dataplane::MatchSetIndex index(mgr_, tree_.network);
  const dataplane::Transfer transfer(index);
  ys::CoverageTracker tracker;
  const auto result = nettest::LocalForwardCheck().run(transfer, tracker);
  EXPECT_TRUE(result.passed()) << (result.failure_messages.empty()
                                       ? ""
                                       : result.failure_messages.front());
  EXPECT_GT(result.checks, 0u);
  EXPECT_EQ(to_string(result.category), std::string("local-concrete"));
  EXPECT_GT(tracker.packet_calls(), 0u);
}

TEST_F(FailureTest, LocalForwardCheckCatchesMisrouting) {
  // Point one agg's route for a remote ToR prefix at a wrong (northern)
  // next hop that is not on a shortest path... instead, null-route it,
  // which the check reports as a drop.
  const net::DeviceId agg = tree_.aggs.front();
  const Ipv4Prefix victim = tree_.network.device(tree_.tors.back()).host_prefixes[0];
  for (const net::RuleId rid : tree_.network.table(agg)) {
    net::Rule& rule = tree_.network.mutable_rule(rid);
    if (rule.match.dst_prefix == victim) rule.action = net::Action::drop();
  }
  const dataplane::MatchSetIndex index(mgr_, tree_.network);
  const dataplane::Transfer transfer(index);
  ys::CoverageTracker tracker;
  EXPECT_FALSE(nettest::LocalForwardCheck().run(transfer, tracker).passed());
}

}  // namespace
}  // namespace yardstick
