// Whole-system integration: the complete Figure 2 taxonomy (all five test
// categories) running against one ACL-equipped regional network, with
// coverage accumulated in a single trace — then reports, JSON export,
// persistence, and incoming-direction interface metrics over the result.
#include <gtest/gtest.h>

#include "nettest/acl_checks.hpp"
#include "nettest/contract_checks.hpp"
#include "nettest/local_forward.hpp"
#include "nettest/reachability.hpp"
#include "nettest/state_checks.hpp"
#include "nettest/waypoint.hpp"
#include "routing/fib_builder.hpp"
#include "topo/acl.hpp"
#include "topo/regional.hpp"
#include "yardstick/engine.hpp"
#include "yardstick/json.hpp"
#include "yardstick/persist.hpp"
#include "yardstick/snapshot.hpp"

namespace yardstick {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() {
    topo::RegionalParams params;
    params.datacenters = 1;
    params.pods_per_dc = 2;
    params.tors_per_pod = 2;
    params.aggs_per_pod = 2;
    params.spines_per_dc = 2;
    params.hubs = 2;
    params.wans = 1;
    params.host_ports_per_tor = 2;
    params.hubs_without_default = 0;
    region_ = topo::make_regional(params);
    routing::FibBuilder::compute_and_build(region_.network, region_.routing);
    topo::install_ingress_acls(region_.network, region_.tors);
    index_.emplace(mgr_, region_.network);
    transfer_.emplace(*index_);
  }

  [[nodiscard]] nettest::TestSuite full_suite() {
    nettest::TestSuite suite("everything");
    // state inspection
    suite.add(std::make_unique<nettest::DefaultRouteCheck>());
    suite.add(std::make_unique<nettest::ConnectedRouteCheck>());
    suite.add(std::make_unique<nettest::AclBlockCheck>());
    // local symbolic
    suite.add(std::make_unique<nettest::InternalRouteCheck>());
    suite.add(std::make_unique<nettest::BlockedPortCheck>());
    // local concrete
    suite.add(std::make_unique<nettest::LocalForwardCheck>());
    // end-to-end symbolic + concrete. The reachability invariant exempts
    // headers the ToR ingress ACLs deny (blocked TCP ports).
    packet::PacketSet blocked = packet::PacketSet::none(mgr_);
    for (const uint16_t port : topo::SecurityPolicy{}.blocked_tcp_ports) {
      blocked = blocked.union_with(
          packet::PacketSet::field_equals(mgr_, packet::Field::DstPort, port));
    }
    blocked = blocked.intersect(
        packet::PacketSet::field_equals(mgr_, packet::Field::Proto, topo::kTcp));
    suite.add(std::make_unique<nettest::ToRReachability>(blocked));
    suite.add(std::make_unique<nettest::ToRPingmesh>());
    return suite;
  }

  bdd::BddManager mgr_{packet::kNumHeaderBits};
  topo::RegionalNetwork region_;
  std::optional<dataplane::MatchSetIndex> index_;
  std::optional<dataplane::Transfer> transfer_;
};

TEST_F(IntegrationTest, AllFiveCategoriesPassTogether) {
  ys::CoverageTracker tracker;
  const auto results = full_suite().run_all(*transfer_, tracker);
  ASSERT_EQ(results.size(), 8u);

  std::set<nettest::TestCategory> seen;
  for (const auto& r : results) {
    EXPECT_TRUE(r.passed()) << r.name << ": "
                            << (r.failure_messages.empty() ? ""
                                                           : r.failure_messages.front());
    seen.insert(r.category);
  }
  EXPECT_EQ(seen.size(), 5u);  // every Figure 2 cell exercised

  // The combined trace mixes rule marks and packet marks.
  EXPECT_GT(tracker.rule_calls(), 0u);
  EXPECT_GT(tracker.packet_calls(), 0u);
}

TEST_F(IntegrationTest, CombinedCoverageIsHighButHonest) {
  ys::CoverageTracker tracker;
  (void)full_suite().run_all(*transfer_, tracker);
  const ys::CoverageEngine engine(mgr_, region_.network, tracker.trace());
  const ys::CoverageReport report = engine.report();

  EXPECT_GT(report.overall.rule_fractional, 0.6);
  EXPECT_LT(report.overall.rule_fractional, 1.0);  // wide-area still untested
  EXPECT_DOUBLE_EQ(report.overall.device_fractional, 1.0);

  bool wide_area_untested = false;
  for (const auto& gap : report.gaps) {
    if (gap.kind == net::RouteKind::WideArea && gap.untested == gap.total) {
      wide_area_untested = true;
    }
    if (gap.kind == net::RouteKind::Security) {
      // Every ACL entry is exercised by AclBlockCheck + BlockedPortCheck.
      EXPECT_LT(gap.untested, gap.total);
    }
  }
  EXPECT_TRUE(wide_area_untested);
}

TEST_F(IntegrationTest, IncomingInterfaceDirectionDiffersFromOutgoing) {
  ys::CoverageTracker tracker;
  (void)nettest::ToRPingmesh().run(*transfer_, tracker);
  const ys::CoverageEngine engine(mgr_, region_.network, tracker.trace());
  const double outgoing = engine.interfaces_coverage(
      coverage::fractional_aggregator(), nullptr, coverage::InterfaceDirection::Outgoing);
  const double incoming = engine.interfaces_coverage(
      coverage::fractional_aggregator(), nullptr, coverage::InterfaceDirection::Incoming);
  EXPECT_GT(outgoing, 0.0);
  EXPECT_GT(incoming, 0.0);
  // Pingmesh enters fabric links but exits host ports; the two directions
  // measure genuinely different state.
  EXPECT_NE(outgoing, incoming);
}

TEST_F(IntegrationTest, JsonRoundTripsThroughRealReport) {
  ys::CoverageTracker tracker;
  const auto results = full_suite().run_all(*transfer_, tracker);
  const ys::CoverageEngine engine(mgr_, region_.network, tracker.trace());
  const std::string report_json = ys::report_to_json(engine.report());
  const std::string results_json = ys::results_to_json(results);

  // Structural sanity: balanced braces/brackets, expected keys present.
  EXPECT_EQ(std::count(report_json.begin(), report_json.end(), '{'),
            std::count(report_json.begin(), report_json.end(), '}'));
  EXPECT_EQ(std::count(results_json.begin(), results_json.end(), '['),
            std::count(results_json.begin(), results_json.end(), ']'));
  for (const char* key : {"\"overall\"", "\"by_role\"", "\"gaps\"", "\"security\""}) {
    EXPECT_NE(report_json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(results_json.find("ToRPingmesh"), std::string::npos);
}

TEST_F(IntegrationTest, PersistedTraceReproducesTheFullReport) {
  ys::CoverageTracker tracker;
  (void)full_suite().run_all(*transfer_, tracker);
  const std::string blob = ys::serialize_trace(tracker.trace(), mgr_);

  bdd::BddManager mgr2(packet::kNumHeaderBits);
  const coverage::CoverageTrace loaded = ys::deserialize_trace(blob, mgr2);

  const ys::CoverageEngine original(mgr_, region_.network, tracker.trace());
  const ys::CoverageEngine restored(mgr2, region_.network, loaded);
  const ys::CoverageReport a = original.report();
  const ys::CoverageReport b = restored.report();
  EXPECT_DOUBLE_EQ(a.overall.rule_fractional, b.overall.rule_fractional);
  EXPECT_DOUBLE_EQ(a.overall.rule_weighted, b.overall.rule_weighted);
  EXPECT_DOUBLE_EQ(a.overall.interface_fractional, b.overall.interface_fractional);
  EXPECT_EQ(a.untested_interface_count, b.untested_interface_count);
}

TEST_F(IntegrationTest, SnapshotMonitorSeesStableNetworkAsQuiet) {
  ys::CoverageTracker tracker;
  (void)full_suite().run_all(*transfer_, tracker);
  const ys::CoverageEngine engine(mgr_, region_.network, tracker.trace());
  const ys::PathCoverageResult paths = engine.path_coverage();

  ys::SnapshotMonitor monitor;
  ys::SnapshotStats day;
  day.label = "day0";
  day.path_universe_size = paths.total_paths;
  day.rule_count = region_.network.rule_count();
  day.coverage = engine.report().overall;
  EXPECT_TRUE(monitor.record(day).empty());
  day.label = "day1";  // identical snapshot: quiet
  EXPECT_TRUE(monitor.record(day).empty());
  // A failed hub shrinks the universe: the §5.2 guard fires.
  day.label = "day2";
  day.path_universe_size = paths.total_paths / 3;
  const auto alerts = monitor.record(day);
  ASSERT_FALSE(alerts.empty());
  EXPECT_EQ(alerts[0].kind, ys::SnapshotAlert::Kind::PathUniverseShift);
}

}  // namespace
}  // namespace yardstick
