// Tests for the multi-table (ingress ACL + FIB) device model: match-set
// computation per table, two-stage transfer, simulators, coverage
// semantics, path exploration, and the two ACL tests.
#include <gtest/gtest.h>

#include "coverage/components.hpp"
#include "coverage/path_explorer.hpp"
#include "dataplane/simulator.hpp"
#include "nettest/acl_checks.hpp"
#include "test_util.hpp"
#include "topo/acl.hpp"
#include "yardstick/engine.hpp"

namespace yardstick {
namespace {

using dataplane::MatchSetIndex;
using dataplane::Transfer;
using packet::ConcretePacket;
using packet::Field;
using packet::Ipv4Prefix;
using packet::PacketSet;
using testutil::make_tiny;
using testutil::packet_to;
using testutil::TinyNetwork;

class AclTest : public ::testing::Test {
 protected:
  AclTest() : tiny_(make_tiny()) {
    acl_rules_ = topo::install_ingress_acls(tiny_.net, {tiny_.leaf1},
                                            topo::SecurityPolicy{{23, 445}});
    index_.emplace(mgr_, tiny_.net);
    transfer_.emplace(*index_);
  }

  [[nodiscard]] PacketSet tcp_port(uint16_t port) {
    return PacketSet::field_equals(mgr_, Field::Proto, 6)
        .intersect(PacketSet::field_equals(mgr_, Field::DstPort, port));
  }

  bdd::BddManager mgr_{packet::kNumHeaderBits};
  TinyNetwork tiny_;
  std::vector<net::RuleId> acl_rules_;  // deny 23, deny 445, permit any
  std::optional<MatchSetIndex> index_;
  std::optional<Transfer> transfer_;
};

TEST_F(AclTest, InstallerShape) {
  ASSERT_EQ(acl_rules_.size(), 3u);
  EXPECT_TRUE(tiny_.net.has_acl(tiny_.leaf1));
  EXPECT_FALSE(tiny_.net.has_acl(tiny_.spine));
  EXPECT_EQ(tiny_.net.rule(acl_rules_[0]).table, net::TableKind::Acl);
  EXPECT_EQ(tiny_.net.rule(acl_rules_[2]).action.type, net::ActionType::Permit);
  EXPECT_EQ(tiny_.net.table(tiny_.leaf1, net::TableKind::Acl).size(), 3u);
  // The FIB is untouched.
  EXPECT_EQ(tiny_.net.table(tiny_.leaf1).size(), 3u);
}

TEST_F(AclTest, TableValidation) {
  EXPECT_THROW(tiny_.net.add_rule(tiny_.spine, net::MatchSpec{},
                                  net::Action::forward({tiny_.sp_d1}),
                                  net::RouteKind::Other, 0, net::TableKind::Acl),
               std::invalid_argument);
  EXPECT_THROW(tiny_.net.add_rule(tiny_.spine, net::MatchSpec{}, net::Action::permit(),
                                  net::RouteKind::Other, 0, net::TableKind::Fib),
               std::invalid_argument);
}

TEST_F(AclTest, PerTableMatchSetsDisjoint) {
  // The permit-any entry's disjoint match set excludes the deny entries.
  const PacketSet deny_space =
      index_->match_set(acl_rules_[0]).union_with(index_->match_set(acl_rules_[1]));
  EXPECT_EQ(index_->match_set(acl_rules_[2]), deny_space.negate());
  // Permitted space = permit match sets.
  EXPECT_EQ(index_->acl_permitted_space(tiny_.leaf1), deny_space.negate());
  // Devices without ACLs permit everything.
  EXPECT_TRUE(index_->acl_permitted_space(tiny_.spine).full());
}

TEST_F(AclTest, ProcessSplitsAclAndFib) {
  const dataplane::DeviceStage stage =
      transfer_->process(tiny_.leaf1, tiny_.l1_host, PacketSet::all(mgr_));
  ASSERT_EQ(stage.acl.size(), 3u);
  EXPECT_EQ(stage.denied, tcp_port(23).union_with(tcp_port(445)));
  EXPECT_EQ(stage.permitted, stage.denied.negate());
  // FIB splits cover only permitted packets.
  PacketSet fib_total = PacketSet::none(mgr_);
  for (const auto& s : stage.fib) fib_total = fib_total.union_with(s.packets);
  EXPECT_EQ(fib_total, stage.permitted);
}

TEST_F(AclTest, ProcessWithoutAclPassesThrough) {
  const dataplane::DeviceStage stage =
      transfer_->process(tiny_.spine, tiny_.sp_d1, PacketSet::all(mgr_));
  EXPECT_TRUE(stage.acl.empty());
  EXPECT_TRUE(stage.denied.empty());
  EXPECT_TRUE(stage.permitted.full());
}

TEST_F(AclTest, ConcreteSimulatorDeniesAtIngress) {
  const dataplane::ConcreteSimulator sim(*transfer_);
  ConcretePacket telnet = packet_to(tiny_.p2);
  telnet.proto = 6;
  telnet.dst_port = 23;
  const auto denied = sim.run(tiny_.leaf1, tiny_.l1_host, telnet);
  EXPECT_EQ(denied.disposition, dataplane::Disposition::Dropped);
  ASSERT_EQ(denied.hops.size(), 1u);
  EXPECT_EQ(denied.hops[0].acl_rule, acl_rules_[0]);
  EXPECT_FALSE(denied.hops[0].rule.valid());

  ConcretePacket web = telnet;
  web.dst_port = 80;
  const auto ok = sim.run(tiny_.leaf1, tiny_.l1_host, web);
  EXPECT_EQ(ok.disposition, dataplane::Disposition::Delivered);
  EXPECT_EQ(ok.hops[0].acl_rule, acl_rules_[2]);  // matched the permit
  EXPECT_EQ(ok.hops[0].rule, tiny_.l1_to_p2);
  // Transit devices without ACLs record no ACL rule.
  EXPECT_FALSE(ok.hops[1].acl_rule.valid());
}

TEST_F(AclTest, SymbolicFloodAttributesDenies) {
  const dataplane::SymbolicSimulator sim(*transfer_);
  const auto result = sim.flood(tiny_.leaf1, tiny_.l1_host, PacketSet::all(mgr_));
  // Explicit denies land in `dropped` at the ingress location, along with
  // the spine's null-route drops downstream.
  const PacketSet at_leaf = result.dropped.at(net::to_location(tiny_.l1_host));
  ASSERT_TRUE(at_leaf.valid());
  EXPECT_EQ(at_leaf, tcp_port(23).union_with(tcp_port(445)));
  // Delivered traffic excludes blocked ports.
  const PacketSet delivered_p2 = result.delivered.at(net::to_location(tiny_.l2_host));
  EXPECT_TRUE(delivered_p2.intersect(tcp_port(23)).empty());
  // Conservation still holds.
  EXPECT_EQ(result.delivered.count() + result.dropped.count() + result.unmatched.count(),
            PacketSet::all(mgr_).count());
}

TEST_F(AclTest, CoverageClipsFibRulesByPermittedSpace) {
  // Mark ONLY blocked-port packets at leaf1: ACL deny rules get covered,
  // FIB rules must not (those packets never reach the FIB).
  coverage::CoverageTrace trace;
  trace.mark_packet(net::to_location(tiny_.l1_host), tcp_port(23));
  const coverage::CoveredSets covered(*index_, trace);
  EXPECT_FALSE(covered.covered(acl_rules_[0]).empty());
  EXPECT_TRUE(covered.covered(tiny_.l1_to_p1).empty());
  EXPECT_TRUE(covered.covered(tiny_.l1_to_p2).empty());
  EXPECT_TRUE(covered.covered(tiny_.l1_default).empty());
}

TEST_F(AclTest, StateInspectionStillCoversFullMatchSet) {
  coverage::CoverageTrace trace;
  trace.mark_rule(tiny_.l1_to_p1);
  const coverage::CoveredSets covered(*index_, trace);
  EXPECT_EQ(covered.covered(tiny_.l1_to_p1), index_->match_set(tiny_.l1_to_p1));
}

TEST_F(AclTest, DeviceCoverageIncludesAclRules) {
  coverage::CoverageTrace trace;
  for (const net::RuleId rid : acl_rules_) trace.mark_rule(rid);
  const coverage::CoveredSets covered(*index_, trace);
  const coverage::ComponentFactory factory(*transfer_);
  // Only the ACL is covered; device coverage must be strictly between 0
  // and 1 (the FIB is untested).
  const double dev = coverage::component_coverage(covered, factory.device(tiny_.leaf1));
  EXPECT_GT(dev, 0.0);
  EXPECT_LT(dev, 1.0);
}

TEST_F(AclTest, PathsEndAtDenyRules) {
  const coverage::PathExplorer explorer(*transfer_, nullptr);
  std::vector<std::vector<net::RuleId>> paths;
  std::vector<coverage::PathEnd> ends;
  explorer.explore(tiny_.leaf1, tiny_.l1_host, PacketSet::all(mgr_),
                   [&](const coverage::ExploredPath& p) {
                     paths.push_back(p.rules);
                     ends.push_back(p.end);
                     return true;
                   });
  // Two deny tails + (permit -> {p1 hairpin, p2 path, default-drop path}).
  ASSERT_EQ(paths.size(), 5u);
  EXPECT_EQ(paths[0], (std::vector<net::RuleId>{acl_rules_[0]}));
  EXPECT_EQ(ends[0], coverage::PathEnd::Dropped);
  EXPECT_EQ(paths[1], (std::vector<net::RuleId>{acl_rules_[1]}));
  // Onward paths start with the permit entry.
  for (size_t i = 2; i < paths.size(); ++i) {
    EXPECT_EQ(paths[i].front(), acl_rules_[2]);
  }
  // The p2 path is permit -> l1_to_p2 -> sp_to_p2 -> l2_to_p2.
  EXPECT_EQ(paths[3], (std::vector<net::RuleId>{acl_rules_[2], tiny_.l1_to_p2,
                                                tiny_.sp_to_p2, tiny_.l2_to_p2}));
}

TEST_F(AclTest, PathCoverageThroughAcl) {
  // Inspect the whole p2 chain including the permit entry: that path's
  // Equation-(3) coverage is 1.
  coverage::CoverageTrace trace;
  for (const net::RuleId rid :
       {acl_rules_[2], tiny_.l1_to_p2, tiny_.sp_to_p2, tiny_.l2_to_p2}) {
    trace.mark_rule(rid);
  }
  const coverage::CoveredSets covered(*index_, trace);
  const coverage::PathExplorer explorer(*transfer_, &covered);
  double p2_ratio = -1.0;
  explorer.explore(tiny_.leaf1, tiny_.l1_host, PacketSet::all(mgr_),
                   [&](const coverage::ExploredPath& p) {
                     if (p.rules.size() == 4) p2_ratio = p.covered_ratio;
                     return true;
                   });
  EXPECT_DOUBLE_EQ(p2_ratio, 1.0);
}

TEST_F(AclTest, AclBlockCheckPassesAndMarks) {
  ys::CoverageTracker tracker;
  const auto result = nettest::AclBlockCheck({23, 445}).run(*transfer_, tracker);
  EXPECT_TRUE(result.passed());
  EXPECT_EQ(result.checks, 2u);
  EXPECT_EQ(tracker.rule_calls(), 2u);
  // The inspected deny rules are now fully covered.
  const coverage::CoveredSets covered(*index_, tracker.trace());
  EXPECT_EQ(covered.covered(acl_rules_[0]), index_->match_set(acl_rules_[0]));
}

TEST_F(AclTest, AclBlockCheckCatchesMissingEntry) {
  ys::CoverageTracker tracker;
  const auto result = nettest::AclBlockCheck({23, 445, 8080}).run(*transfer_, tracker);
  EXPECT_FALSE(result.passed());
  EXPECT_EQ(result.failures, 1u);
}

TEST_F(AclTest, BlockedPortCheckPassesAndCatchesHoles) {
  ys::CoverageTracker tracker;
  EXPECT_TRUE(nettest::BlockedPortCheck({23, 445}).run(*transfer_, tracker).passed());
  EXPECT_GT(tracker.packet_calls(), 0u);
  // A port with no deny entry reaches the FIB -> the check fails.
  EXPECT_FALSE(nettest::BlockedPortCheck({8080}).run(*transfer_, tracker).passed());
}

TEST_F(AclTest, UntestedRulesIncludeAclEntries) {
  const coverage::CoverageTrace empty;
  const ys::CoverageEngine engine(mgr_, tiny_.net, empty);
  size_t security = 0;
  for (const net::RuleId rid : engine.untested_rules()) {
    if (tiny_.net.rule(rid).kind == net::RouteKind::Security) ++security;
  }
  EXPECT_EQ(security, 3u);
}

}  // namespace
}  // namespace yardstick
