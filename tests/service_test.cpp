// yardstickd resilience tests (src/service).
//
// Every robustness property the daemon claims is provoked here: WAL
// durability and torn tails, crash recovery converging to canonical
// bytes, idempotent re-delivery, backpressure under a stalled consumer,
// injected syscall failures (EINTR, short read/write, refused accept),
// and graceful drain. The fixture name matches the TSan CI job's
// `-R "ParallelDeterminism|Resilience"` filter, so the daemon's thread
// structure is also exercised under the race detector.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "fault_injection.hpp"
#include "netio/frame.hpp"
#include "packet/fields.hpp"
#include "packet/packet_set.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/io.hpp"
#include "service/signal.hpp"
#include "service/wal.hpp"
#include "yardstick/persist.hpp"

namespace yardstick {
namespace {

using packet::Ipv4Prefix;
using packet::PacketSet;
using testutil::ScopedAdjustFault;
using testutil::ScopedFault;

/// Runs a daemon's accept loop on a background thread for one test scope.
struct DaemonHarness {
  service::Daemon daemon;
  std::thread runner;

  explicit DaemonHarness(service::DaemonOptions opts) : daemon(std::move(opts)) {
    daemon.start();
    runner = std::thread([this] { daemon.run(); });
  }
  void stop_graceful() {
    daemon.request_stop();
    if (runner.joinable()) runner.join();
    daemon.shutdown();
  }
  void stop_crash() {
    daemon.request_stop();
    if (runner.joinable()) runner.join();
    daemon.crash_stop();
  }
  ~DaemonHarness() {
    daemon.request_stop();
    if (runner.joinable()) runner.join();
  }
};

/// Keeps the consumer asleep for `stall` per batch by re-arming the
/// daemon.consume.delay fault point after every firing.
void arm_consumer_stall(std::chrono::milliseconds stall) {
  fault::arm("daemon.consume.delay", 1, [stall] {
    std::this_thread::sleep_for(stall);
    arm_consumer_stall(stall);
  });
}

class ServiceResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/svc_" + info->name() + "_" +
           std::to_string(::getpid());
    ::mkdir(dir_.c_str(), 0755);
  }

  // The daemon under test must be stopped before this runs (test body
  // scope), so a re-arming stall action cannot resurrect after reset.
  void TearDown() override { fault::reset(); }

  [[nodiscard]] std::string path(const char* leaf) const { return dir_ + "/" + leaf; }

  [[nodiscard]] static PacketSet prefix(bdd::BddManager& mgr, const char* cidr) {
    return PacketSet::dst_prefix(mgr, Ipv4Prefix::parse(cidr));
  }

  /// The reference trace every ingest test reconstitutes.
  [[nodiscard]] static coverage::CoverageTrace expected_trace(bdd::BddManager& mgr) {
    coverage::CoverageTrace t;
    t.mark_packet(1, prefix(mgr, "10.0.0.0/8"));
    t.mark_packet(2, prefix(mgr, "10.2.0.0/16"));
    t.mark_packet(9, prefix(mgr, "192.168.7.0/24"));
    for (const uint32_t rid : {5u, 17u, 42u, 400u}) t.mark_rule(net::RuleId{rid});
    return t;
  }

  /// Canonical bytes of the reference trace (manager-independent).
  [[nodiscard]] static std::string expected_bytes() {
    bdd::BddManager mgr(packet::kNumHeaderBits);
    const coverage::CoverageTrace t = expected_trace(mgr);
    return ys::serialize_trace(t, mgr);
  }

  [[nodiscard]] service::ClientOptions client_options(uint64_t session) const {
    service::ClientOptions o;
    o.socket_path = path("ys.sock");
    o.session_id = session;
    o.jitter_seed = session + 1;
    o.backoff_base_ms = 5;
    return o;
  }

  /// Stream the reference trace through a client, optionally as shard
  /// `shard` of `shards` (locations in map order, then rules sorted —
  /// the same deterministic split the CLI uses).
  void send_expected(const service::ClientOptions& copts, size_t shard = 0,
                     size_t shards = 1, size_t repeats = 1) {
    bdd::BddManager mgr(packet::kNumHeaderBits);
    const coverage::CoverageTrace t = expected_trace(mgr);
    service::IngestClient client(copts);
    for (size_t round = 0; round < repeats; ++round) {
      size_t index = 0;
      for (const auto& [loc, ps] : t.marked_packets().entries()) {
        if (index++ % shards == shard) client.mark_packet(loc, ps);
      }
      for (const uint32_t rid : {5u, 17u, 42u, 400u}) {
        if (index++ % shards == shard) client.mark_rule(net::RuleId{rid});
      }
      client.flush();
    }
    client.close();
  }

  std::string dir_;
};

// --- write-ahead journal ------------------------------------------------

TEST_F(ServiceResilienceTest, WalRoundTripsRecords) {
  service::Wal wal({.path = path("ys.wal"), .fsync = true});
  wal.open_for_append();
  wal.append("first record");
  wal.append("second, longer record with bytes \x01\x02\x03");
  const uint64_t grown = wal.bytes();

  std::vector<std::string> seen;
  const auto stats = service::Wal::replay(
      path("ys.wal"), [&](std::string_view rec) { seen.emplace_back(rec); });
  EXPECT_EQ(stats.records, 2u);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_FALSE(stats.bad_tail);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "first record");

  wal.reset();
  EXPECT_LT(wal.bytes(), grown);
  const auto empty = service::Wal::replay(path("ys.wal"), [](std::string_view) {});
  EXPECT_EQ(empty.records, 0u);
}

TEST_F(ServiceResilienceTest, WalMissingFileIsAnEmptyJournal) {
  const auto stats = service::Wal::replay(path("absent.wal"), [](std::string_view) {});
  EXPECT_EQ(stats.records, 0u);
  EXPECT_FALSE(stats.torn_tail);
}

TEST_F(ServiceResilienceTest, WalTornTailIsDetectedAndDiscarded) {
  service::Wal wal({.path = path("ys.wal"), .fsync = false});
  wal.open_for_append();
  wal.append("survives");
  {
    // A crash mid-append: record header promises 50 bytes, only 5 land.
    std::ofstream torn(path("ys.wal"), std::ios::binary | std::ios::app);
    std::string partial;
    netio::put_u32(partial, 50);
    netio::put_u64(partial, 0);
    partial += "stub!";
    torn << partial;
  }
  size_t records = 0;
  const auto stats =
      service::Wal::replay(path("ys.wal"), [&](std::string_view) { ++records; });
  EXPECT_EQ(records, 1u);
  EXPECT_TRUE(stats.torn_tail);
}

TEST_F(ServiceResilienceTest, WalChecksumMismatchStopsReplay) {
  service::Wal wal({.path = path("ys.wal"), .fsync = false});
  wal.open_for_append();
  wal.append("good record");
  wal.append("this one rots");
  {
    std::fstream f(path("ys.wal"), std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-3, std::ios::end);  // flip a bit inside the last payload
    char c = 0;
    f.seekg(-3, std::ios::end);
    f.get(c);
    f.seekp(-3, std::ios::end);
    f.put(static_cast<char>(c ^ 0x20));
  }
  size_t records = 0;
  const auto stats =
      service::Wal::replay(path("ys.wal"), [&](std::string_view) { ++records; });
  EXPECT_EQ(records, 1u);
  EXPECT_TRUE(stats.bad_tail);
}

TEST_F(ServiceResilienceTest, WalFsyncFailureFailsTheAppend) {
  service::Wal wal({.path = path("ys.wal"), .fsync = true});
  wal.open_for_append();
  const ScopedFault boom("wal.append.fsync", testutil::throw_io("injected fsync"));
  // The batch must not be acknowledged: append() reports the failure.
  EXPECT_THROW(wal.append("never durable"), ys::IoError);
}

TEST_F(ServiceResilienceTest, WalShortWriteIsAbsorbedByTheFullWriteLoop) {
  service::Wal wal({.path = path("ys.wal"), .fsync = false});
  wal.open_for_append();
  const ScopedAdjustFault chop("wal.write.len", testutil::cap_len(3));
  wal.append("a record far longer than three bytes");
  std::vector<std::string> seen;
  service::Wal::replay(path("ys.wal"),
                       [&](std::string_view rec) { seen.emplace_back(rec); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "a record far longer than three bytes");
}

// --- syscall wrappers ---------------------------------------------------

TEST_F(ServiceResilienceTest, IoWrappersRetryEintrAndAbsorbShortOps) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  service::Fd rd(fds[0]), wr(fds[1]);

  {  // EINTR on write: the wrapper retries transparently.
    const ScopedAdjustFault intr("net.write.pre", testutil::fail_with(EINTR));
    EXPECT_TRUE(service::io_write_full(wr.get(), "hello", 5, "net.write"));
  }
  {  // Short read: the caller sees fewer bytes, not an error.
    const ScopedAdjustFault chop("net.read.len", testutil::cap_len(2));
    char buf[8] = {};
    EXPECT_EQ(service::io_read(rd.get(), buf, 5, "net.read"), 2);
    EXPECT_EQ(service::io_read(rd.get(), buf, 5, "net.read"), 3);  // the rest
  }
  {  // EINTR on read: retried until the kernel answers.
    const ScopedAdjustFault intr("net.read.pre", testutil::fail_with(EINTR));
    EXPECT_TRUE(service::io_write_full(wr.get(), "x", 1, "net.write"));
    char buf[4] = {};
    EXPECT_EQ(service::io_read(rd.get(), buf, 4, "net.read"), 1);
  }
  {  // A hard error surfaces as a failed call with errno set.
    const ScopedAdjustFault reset_err("net.read.pre", testutil::fail_with(ECONNRESET));
    char buf[4] = {};
    EXPECT_EQ(service::io_read(rd.get(), buf, 4, "net.read"), -1);
    EXPECT_EQ(errno, ECONNRESET);
  }
  {  // Short write: io_write_full loops until every byte is out.
    const ScopedAdjustFault chop("net.write.len", testutil::cap_len(1));
    EXPECT_TRUE(service::io_write_full(wr.get(), "abcdef", 6, "net.write"));
    char buf[8] = {};
    EXPECT_EQ(service::io_read(rd.get(), buf, 6, "net.read"), 6);
  }
}

// --- daemon end to end --------------------------------------------------

TEST_F(ServiceResilienceTest, IngestThroughDaemonMatchesDirectTrace) {
  service::DaemonOptions opts;
  opts.socket_path = path("ys.sock");
  opts.wal_path = path("ys.wal");
  opts.snapshot_path = path("ys.trace");
  DaemonHarness h(std::move(opts));

  send_expected(client_options(1));
  h.stop_graceful();

  EXPECT_EQ(h.daemon.serialized_trace(), expected_bytes());
  const service::DaemonStats s = h.daemon.stats();
  EXPECT_EQ(s.sessions, 1u);
  EXPECT_GE(s.batches, 1u);
  EXPECT_EQ(s.rejected_batches, 0u);
  // The shutdown snapshot holds exactly the canonical bytes.
  bdd::BddManager mgr(packet::kNumHeaderBits);
  const coverage::CoverageTrace reloaded = ys::load_trace(path("ys.trace"), mgr);
  EXPECT_EQ(ys::serialize_trace(reloaded, mgr), expected_bytes());
}

TEST_F(ServiceResilienceTest, ShardedSessionsMergeDeterministically) {
  service::DaemonOptions opts;
  opts.socket_path = path("ys.sock");
  DaemonHarness h(std::move(opts));

  // Interleaved halves from two concurrent sessions, like parallel test
  // shards; the merged result must be exactly the whole trace.
  std::thread a([&] { send_expected(client_options(1), 0, 2); });
  std::thread b([&] { send_expected(client_options(2), 1, 2); });
  a.join();
  b.join();
  h.stop_graceful();

  EXPECT_EQ(h.daemon.serialized_trace(), expected_bytes());
  EXPECT_EQ(h.daemon.stats().sessions, 2u);
}

TEST_F(ServiceResilienceTest, ReDeliveryIsIdempotent) {
  service::DaemonOptions opts;
  opts.socket_path = path("ys.sock");
  DaemonHarness h(std::move(opts));

  // The same events delivered three times (lost-ack replays): a union
  // merge must not double-count anything.
  send_expected(client_options(1), 0, 1, /*repeats=*/3);
  h.stop_graceful();
  EXPECT_EQ(h.daemon.serialized_trace(), expected_bytes());
}

TEST_F(ServiceResilienceTest, CrashRecoveryConvergesToTheSameBytes) {
  service::DaemonOptions opts;
  opts.socket_path = path("ys.sock");
  opts.wal_path = path("ys.wal");
  opts.snapshot_path = path("ys.trace");

  {  // First life: ingest, then die without drain or snapshot.
    DaemonHarness h(opts);
    send_expected(client_options(1));
    h.stop_crash();
    EXPECT_EQ(h.daemon.stats().compactions, 0u);
  }
  {  // Second life: the journal alone reconstitutes the trace.
    DaemonHarness h(opts);
    const service::DaemonStats s = h.daemon.stats();
    EXPECT_GE(s.recovered_records, 1u);
    // A client that never learned of its acks re-delivers everything —
    // recovery plus re-delivery still converge (idempotent union).
    send_expected(client_options(1));
    h.stop_graceful();
    EXPECT_EQ(h.daemon.serialized_trace(), expected_bytes());
  }
  {  // Third life: snapshot-only recovery (the WAL was truncated).
    DaemonHarness h(opts);
    const service::DaemonStats s = h.daemon.stats();
    EXPECT_TRUE(s.recovered_snapshot);
    EXPECT_EQ(s.recovered_records, 0u);
    h.stop_graceful();
    EXPECT_EQ(h.daemon.serialized_trace(), expected_bytes());
  }
}

TEST_F(ServiceResilienceTest, TornWalTailSurvivesRecovery) {
  service::DaemonOptions opts;
  opts.socket_path = path("ys.sock");
  opts.wal_path = path("ys.wal");
  opts.snapshot_path = path("ys.trace");
  {
    DaemonHarness h(opts);
    send_expected(client_options(1));
    h.stop_crash();
  }
  {  // kill -9 mid-append: garbage after the last complete record.
    std::ofstream torn(path("ys.wal"), std::ios::binary | std::ios::app);
    std::string partial;
    netio::put_u32(partial, 9999);
    netio::put_u64(partial, 0x1234);
    partial += "torn";
    torn << partial;
  }
  DaemonHarness h(opts);
  const service::DaemonStats s = h.daemon.stats();
  EXPECT_GE(s.recovered_records, 1u);
  EXPECT_TRUE(s.recovered_torn_tail);
  h.stop_graceful();
  EXPECT_EQ(h.daemon.serialized_trace(), expected_bytes());
}

TEST_F(ServiceResilienceTest, FullQueueAnswersBusyAndClientsRecover) {
  service::DaemonOptions opts;
  opts.socket_path = path("ys.sock");
  opts.queue_capacity = 1;  // the tightest memory bound
  opts.busy_retry_ms = 10;
  DaemonHarness h(std::move(opts));

  // Stall the consumer so three concurrent producers overrun a queue of
  // one: at least one push must be answered with explicit backpressure.
  arm_consumer_stall(std::chrono::milliseconds(300));
  std::vector<std::thread> clients;
  for (uint64_t session = 1; session <= 3; ++session) {
    clients.emplace_back([this, session] {
      service::ClientOptions o = client_options(session);
      o.max_attempts = 50;
      service::IngestClient client(o);
      client.mark_rule(net::RuleId{static_cast<uint32_t>(100 + session)});
      client.close();
    });
  }
  for (auto& t : clients) t.join();
  h.stop_graceful();
  fault::reset();  // consumer is joined; the stall cannot re-arm now

  const service::DaemonStats s = h.daemon.stats();
  EXPECT_GE(s.busy_rejections, 1u);
  // Backpressure lost nothing: all three marks arrived exactly once.
  bdd::BddManager mgr(packet::kNumHeaderBits);
  const coverage::CoverageTrace merged = h.daemon.merged_trace(mgr);
  EXPECT_EQ(merged.marked_rules().size(), 3u);
  for (const uint32_t rid : {101u, 102u, 103u}) {
    EXPECT_TRUE(merged.rule_marked(net::RuleId{rid}));
  }
}

TEST_F(ServiceResilienceTest, RefusedAcceptDoesNotKillTheDaemon) {
  service::DaemonOptions opts;
  opts.socket_path = path("ys.sock");
  DaemonHarness h(std::move(opts));

  // The daemon's very next accept fails (fd exhaustion); the listener
  // stays readable, the retry accepts, the client never notices.
  const ScopedAdjustFault no_fds("net.accept.pre", testutil::fail_with(EMFILE));
  send_expected(client_options(1));
  h.stop_graceful();

  EXPECT_EQ(h.daemon.stats().accept_failures, 1u);
  EXPECT_EQ(h.daemon.serialized_trace(), expected_bytes());
}

TEST_F(ServiceResilienceTest, CorruptFrameClosesTheConnectionNotTheDaemon) {
  service::DaemonOptions opts;
  opts.socket_path = path("ys.sock");
  DaemonHarness h(std::move(opts));

  {  // A peer speaking garbage is refused loudly and disconnected.
    service::Fd raw = service::connect_unix(path("ys.sock"));
    ASSERT_TRUE(raw.valid());
    const std::string garbage(64, 'Z');
    ASSERT_TRUE(service::io_write_full(raw.get(), garbage.data(), garbage.size(),
                                       "net.write"));
    char buf[512];
    ssize_t n = 0;
    size_t total = 0;
    while ((n = service::io_read(raw.get(), buf, sizeof(buf), "net.read")) > 0) {
      total += static_cast<size_t>(n);  // Error frame, then EOF
    }
    EXPECT_GT(total, 0u);
  }
  // The daemon is still serving: a well-behaved client succeeds.
  send_expected(client_options(1));
  h.stop_graceful();
  EXPECT_GE(h.daemon.stats().corrupt_frames, 1u);
  EXPECT_EQ(h.daemon.serialized_trace(), expected_bytes());
}

TEST_F(ServiceResilienceTest, BatchBeforeHelloIsRejected) {
  service::DaemonOptions opts;
  opts.socket_path = path("ys.sock");
  DaemonHarness h(std::move(opts));

  service::Fd raw = service::connect_unix(path("ys.sock"));
  ASSERT_TRUE(raw.valid());
  const std::string frame = netio::encode_frame(netio::FrameType::Batch, 1, "");
  ASSERT_TRUE(service::io_write_full(raw.get(), frame.data(), frame.size(),
                                     "net.write"));
  std::string buffer;
  char buf[512];
  ssize_t n = 0;
  while ((n = service::io_read(raw.get(), buf, sizeof(buf), "net.read")) > 0) {
    buffer.append(buf, static_cast<size_t>(n));
  }
  const netio::DecodeResult r = netio::decode_frame(buffer);
  ASSERT_EQ(r.status, netio::DecodeStatus::Ok);
  EXPECT_EQ(r.frame.type, netio::FrameType::Error);
  h.stop_graceful();
}

TEST_F(ServiceResilienceTest, VariableUniverseMismatchIsRefusedAtHello) {
  service::DaemonOptions opts;
  opts.socket_path = path("ys.sock");
  DaemonHarness h(std::move(opts));

  service::ClientOptions o = client_options(1);
  o.num_vars = 8;      // daemon speaks 104
  o.max_attempts = 2;  // permanent refusal: fail fast
  o.backoff_base_ms = 1;
  service::IngestClient client(o);
  client.mark_rule(net::RuleId{1});
  EXPECT_THROW(client.flush(), ys::IoError);
  h.stop_graceful();
  EXPECT_EQ(h.daemon.stats().batches, 0u);
}

TEST_F(ServiceResilienceTest, SignalFdWakesTheAcceptLoop) {
  service::DaemonOptions opts;
  opts.socket_path = path("ys.sock");
  opts.snapshot_path = path("ys.trace");
  service::Daemon daemon(std::move(opts));
  daemon.start();

  service::ShutdownSignal& sig = service::ShutdownSignal::install();
  std::thread runner([&] { daemon.run(sig.fd()); });
  send_expected(client_options(1));
  sig.trigger();  // what the SIGTERM handler does, minus the raise
  runner.join();
  EXPECT_TRUE(sig.requested());
  daemon.shutdown();
  EXPECT_EQ(daemon.serialized_trace(), expected_bytes());
}

}  // namespace
}  // namespace yardstick
