// JSON output must stay parseable no matter how degraded the metrics are:
// doubles can degrade to NaN/Infinity under a tripped resource budget, and
// JSON has no literals for either — a report containing them would break
// every dashboard consuming it. Non-finite values serialize as 0 and the
// truncated flag tells readers the row is partial.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "routing/fib_builder.hpp"
#include "topo/fattree.hpp"
#include "yardstick/engine.hpp"
#include "yardstick/json.hpp"
#include "yardstick/tracker.hpp"

namespace yardstick::ys {
namespace {

/// Minimal recursive-descent JSON syntax checker — no DOM, just "is this
/// document well-formed?". Numbers must match the JSON grammar, which is
/// exactly what rejects nan/inf tokens.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  [[nodiscard]] bool well_formed() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const size_t start = pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    return pos_ > start;
  }

  bool literal(const char* word) {
    const size_t len = std::strlen(word);
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  size_t pos_ = 0;
};

bool contains_nonfinite_token(const std::string& json) {
  // "inf"/"nan" can only be value tokens right after ':' (keys like
  // "interface_fractional" legitimately contain "inf"'s letters).
  for (const char* token : {":nan", ":-nan", ":inf", ":-inf"}) {
    if (json.find(token) != std::string::npos) return true;
  }
  return false;
}

TEST(JsonFormatTest, WellFormedOnNormalReport) {
  CoverageReport report;
  report.overall = {0.5, 0.25, 0.125, 0.75, false};
  RoleBreakdown row;
  row.role = net::Role::ToR;
  row.device_count = 3;
  row.metrics = report.overall;
  report.by_role.push_back(row);
  report.gaps.push_back({net::RouteKind::Internal, 2, 10});
  const std::string json = report_to_json(report);
  EXPECT_TRUE(JsonChecker(json).well_formed()) << json;
}

TEST(JsonFormatTest, NonFiniteMetricsSerializeAsZero) {
  // Degraded aggregations can hand the serializer NaN and ±infinity;
  // the document must stay parseable and free of nan/inf tokens.
  CoverageReport report;
  report.overall = {std::nan(""), std::numeric_limits<double>::infinity(),
                    -std::numeric_limits<double>::infinity(), 0.5, true};
  RoleBreakdown row;
  row.role = net::Role::Spine;
  row.metrics.rule_weighted = std::nan("");
  report.by_role.push_back(row);
  report.truncated = true;

  const std::string json = report_to_json(report);
  EXPECT_TRUE(JsonChecker(json).well_formed()) << json;
  EXPECT_FALSE(contains_nonfinite_token(json)) << json;
  EXPECT_NE(json.find("\"device_fractional\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"truncated\":true"), std::string::npos) << json;
}

TEST(JsonFormatTest, BudgetTruncatedReportStaysParseable) {
  // End to end: a node cap small enough to trip during match-set
  // construction must still yield a well-formed, truncated-flagged report.
  topo::FatTree tree = topo::make_fat_tree({.k = 4});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);
  bdd::BddManager mgr(packet::kNumHeaderBits);
  ResourceBudget budget;
  budget.with_max_bdd_nodes(64);
  CoverageTracker tracker;
  const CoverageEngine engine(mgr, tree.network, tracker.trace(), &budget);
  ASSERT_TRUE(engine.truncated());

  const std::string json = report_to_json(engine.report());
  EXPECT_TRUE(JsonChecker(json).well_formed()) << json;
  EXPECT_FALSE(contains_nonfinite_token(json)) << json;
  EXPECT_NE(json.find("\"truncated\":true"), std::string::npos) << json;
}

}  // namespace
}  // namespace yardstick::ys
