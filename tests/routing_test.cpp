// Tests for the BGP path-vector simulator and FIB builder on small
// hand-built Clos topologies.
#include <gtest/gtest.h>

#include <algorithm>

#include "routing/fib_builder.hpp"
#include "topo/subnets.hpp"

namespace yardstick::routing {
namespace {

using net::DeviceId;
using net::InterfaceId;
using net::PortKind;
using net::Role;
using net::RouteKind;
using packet::Ipv4Prefix;

/// Two-tier Clos: two ToRs under two aggs (full mesh), plus one WAN router
/// above both aggs.
struct SmallClos {
  net::Network net;
  RoutingConfig config;
  DeviceId tor1, tor2, agg1, agg2, wan;
};

SmallClos make_small_clos() {
  SmallClos s;
  net::Network& n = s.net;
  topo::SubnetAllocator subnets;

  s.tor1 = n.add_device("tor1", Role::ToR, role_asn(Role::ToR));
  s.tor2 = n.add_device("tor2", Role::ToR, role_asn(Role::ToR));
  s.agg1 = n.add_device("agg1", Role::Aggregation, role_asn(Role::Aggregation));
  s.agg2 = n.add_device("agg2", Role::Aggregation, role_asn(Role::Aggregation));
  s.wan = n.add_device("wan", Role::Wan, role_asn(Role::Wan));

  const auto connect = [&](DeviceId a, DeviceId b) {
    const InterfaceId ia =
        n.add_interface(a, "eth" + std::to_string(n.device(a).interfaces.size()));
    const InterfaceId ib =
        n.add_interface(b, "eth" + std::to_string(n.device(b).interfaces.size()));
    n.add_link(ia, ib, subnets.next_link_subnet());
  };
  for (const DeviceId tor : {s.tor1, s.tor2}) {
    for (const DeviceId agg : {s.agg1, s.agg2}) connect(tor, agg);
  }
  for (const DeviceId agg : {s.agg1, s.agg2}) connect(agg, s.wan);

  for (const DeviceId tor : {s.tor1, s.tor2}) {
    n.device(tor).host_prefixes.push_back(subnets.next_host_prefix());
    n.add_interface(tor, "host0", PortKind::HostPort);
    n.device(tor).loopbacks.push_back(subnets.next_loopback());
    n.add_interface(tor, "local0", PortKind::LocalPort);
  }
  for (const DeviceId agg : {s.agg1, s.agg2}) {
    n.device(agg).loopbacks.push_back(subnets.next_loopback());
    n.add_interface(agg, "local0", PortKind::LocalPort);
  }
  n.add_interface(s.wan, "internet0", PortKind::ExternalPort);
  s.config.wide_area_prefixes[s.wan] = {Ipv4Prefix::parse("100.64.0.0/16")};
  return s;
}

const SimRibEntry* find_entry(const SimRib& rib, const Ipv4Prefix& p) {
  const uint64_t key = prefix_key(p);
  const auto it = std::find_if(rib.begin(), rib.end(),
                               [&](const SimRibEntry& e) { return e.prefix_key == key; });
  return it == rib.end() ? nullptr : &*it;
}

const net::Rule* find_fib_rule(const net::Network& n, DeviceId dev, const Ipv4Prefix& p) {
  for (const net::RuleId rid : n.table(dev)) {
    const net::Rule& r = n.rule(rid);
    if (r.match.dst_prefix && *r.match.dst_prefix == p) return &r;
  }
  return nullptr;
}

class BgpSimTest : public ::testing::Test {
 protected:
  BgpSimTest() : clos_(make_small_clos()) {}
  SmallClos clos_;
};

TEST_F(BgpSimTest, ConvergesToFixpoint) {
  BgpSimulator sim(clos_.net, clos_.config);
  const auto ribs = sim.run();
  EXPECT_LT(sim.rounds_used(), clos_.config.max_rounds);
  EXPECT_EQ(ribs.size(), clos_.net.device_count());
}

TEST_F(BgpSimTest, HostPrefixPropagatesWithShortestPathsAndEcmp) {
  BgpSimulator sim(clos_.net, clos_.config);
  const auto ribs = sim.run();
  const Ipv4Prefix p2 = clos_.net.device(clos_.tor2).host_prefixes.front();

  // tor1 reaches tor2's prefix via both aggs (ECMP, path length 2).
  const SimRibEntry* at_tor1 = find_entry(ribs[clos_.tor1.value], p2);
  ASSERT_NE(at_tor1, nullptr);
  EXPECT_EQ(at_tor1->path_length, 2);
  EXPECT_EQ(at_tor1->next_hops.size(), 2u);

  // aggs reach it directly (length 1, single next hop).
  const SimRibEntry* at_agg1 = find_entry(ribs[clos_.agg1.value], p2);
  ASSERT_NE(at_agg1, nullptr);
  EXPECT_EQ(at_agg1->path_length, 1);
  ASSERT_EQ(at_agg1->next_hops.size(), 1u);
  EXPECT_EQ(clos_.net.neighbor(at_agg1->next_hops[0]), clos_.tor2);

  // WAN learns it two hops away via both aggs.
  const SimRibEntry* at_wan = find_entry(ribs[clos_.wan.value], p2);
  ASSERT_NE(at_wan, nullptr);
  EXPECT_EQ(at_wan->path_length, 2);
  EXPECT_EQ(at_wan->next_hops.size(), 2u);
}

TEST_F(BgpSimTest, DefaultRouteOriginatesAtWan) {
  BgpSimulator sim(clos_.net, clos_.config);
  const auto ribs = sim.run();
  const SimRibEntry* at_agg = find_entry(ribs[clos_.agg1.value], Ipv4Prefix(0, 0));
  ASSERT_NE(at_agg, nullptr);
  EXPECT_EQ(at_agg->kind, RouteKind::Default);
  EXPECT_EQ(at_agg->path_length, 1);
  const SimRibEntry* at_tor = find_entry(ribs[clos_.tor1.value], Ipv4Prefix(0, 0));
  ASSERT_NE(at_tor, nullptr);
  EXPECT_EQ(at_tor->path_length, 2);
  EXPECT_EQ(at_tor->next_hops.size(), 2u);
}

TEST_F(BgpSimTest, WideAreaRoutesStopAtSpineTier) {
  // In this small Clos the aggs are below the spine tier, so wide-area
  // prefixes must not reach them (nor the ToRs).
  BgpSimulator sim(clos_.net, clos_.config);
  const auto ribs = sim.run();
  const Ipv4Prefix wide = Ipv4Prefix::parse("100.64.0.0/16");
  EXPECT_EQ(find_entry(ribs[clos_.agg1.value], wide), nullptr);
  EXPECT_EQ(find_entry(ribs[clos_.tor1.value], wide), nullptr);
  // The WAN itself originates it.
  const SimRibEntry* at_wan = find_entry(ribs[clos_.wan.value], wide);
  ASSERT_NE(at_wan, nullptr);
  EXPECT_TRUE(at_wan->originated);
}

TEST_F(BgpSimTest, WideAreaRoutesReachSpinesWhenPresent) {
  // Insert a spine layer between aggs and WAN; spines must carry the
  // wide-area prefix, aggs must not.
  SmallClos s;
  net::Network& n = s.net;
  topo::SubnetAllocator subnets;
  const DeviceId agg = n.add_device("agg", Role::Aggregation, role_asn(Role::Aggregation));
  const DeviceId spine = n.add_device("spine", Role::Spine, role_asn(Role::Spine));
  const DeviceId wan = n.add_device("wan", Role::Wan, role_asn(Role::Wan));
  const auto connect = [&](DeviceId a, DeviceId b) {
    const auto ia = n.add_interface(a, "x" + std::to_string(n.device(a).interfaces.size()));
    const auto ib = n.add_interface(b, "x" + std::to_string(n.device(b).interfaces.size()));
    n.add_link(ia, ib, subnets.next_link_subnet());
  };
  connect(agg, spine);
  connect(spine, wan);
  RoutingConfig config;
  const Ipv4Prefix wide = Ipv4Prefix::parse("100.64.0.0/16");
  config.wide_area_prefixes[wan] = {wide};

  BgpSimulator sim(n, config);
  const auto ribs = sim.run();
  EXPECT_NE(find_entry(ribs[spine.value], wide), nullptr);
  EXPECT_EQ(find_entry(ribs[agg.value], wide), nullptr);
}

TEST_F(BgpSimTest, NullDefaultDeviceSuppressesReadvertisement) {
  // agg1 null-routes its static default: tor1/tor2 must then learn the
  // default only via agg2 (single next hop instead of two).
  clos_.config.null_default_devices.insert(clos_.agg1);
  BgpSimulator sim(clos_.net, clos_.config);
  const auto ribs = sim.run();
  const SimRibEntry* at_tor = find_entry(ribs[clos_.tor1.value], Ipv4Prefix(0, 0));
  ASSERT_NE(at_tor, nullptr);
  ASSERT_EQ(at_tor->next_hops.size(), 1u);
  EXPECT_EQ(clos_.net.neighbor(at_tor->next_hops[0]), clos_.agg2);
}

TEST_F(BgpSimTest, NoDefaultDeviceRejectsDefault) {
  clos_.config.no_default_devices.insert(clos_.agg1);
  BgpSimulator sim(clos_.net, clos_.config);
  const auto ribs = sim.run();
  EXPECT_EQ(find_entry(ribs[clos_.agg1.value], Ipv4Prefix(0, 0)), nullptr);
  // Other prefixes are unaffected.
  EXPECT_NE(find_entry(ribs[clos_.agg1.value],
                       clos_.net.device(clos_.tor1).host_prefixes.front()),
            nullptr);
}

class FibBuilderTest : public ::testing::Test {
 protected:
  FibBuilderTest() : clos_(make_small_clos()) {
    FibBuilder::compute_and_build(clos_.net, clos_.config);
  }
  SmallClos clos_;
};

TEST_F(FibBuilderTest, EveryDeviceGetsRules) {
  for (const net::Device& dev : clos_.net.devices()) {
    EXPECT_FALSE(clos_.net.table(dev.id).empty()) << dev.name;
  }
}

TEST_F(FibBuilderTest, TablesAreLongestPrefixFirst) {
  for (const net::Device& dev : clos_.net.devices()) {
    uint8_t last_len = 32;
    for (const net::RuleId rid : clos_.net.table(dev.id)) {
      const uint8_t len = clos_.net.rule(rid).match.dst_prefix->length();
      EXPECT_LE(len, last_len);
      last_len = len;
    }
  }
}

TEST_F(FibBuilderTest, ConnectedRoutesOnBothLinkEnds) {
  for (const net::Link& link : clos_.net.links()) {
    ASSERT_TRUE(link.subnet.has_value());
    for (const InterfaceId side : {link.a, link.b}) {
      const net::Rule* rule =
          find_fib_rule(clos_.net, clos_.net.interface(side).device, *link.subnet);
      ASSERT_NE(rule, nullptr);
      EXPECT_EQ(rule->kind, RouteKind::Connected);
      EXPECT_EQ(rule->action.out_interfaces, (std::vector<InterfaceId>{side}));
    }
  }
}

TEST_F(FibBuilderTest, StaticDefaultPointsNorth) {
  const net::Rule* rule = find_fib_rule(clos_.net, clos_.tor1, Ipv4Prefix(0, 0));
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->kind, RouteKind::Default);
  ASSERT_EQ(rule->action.out_interfaces.size(), 2u);  // both aggs
  for (const InterfaceId i : rule->action.out_interfaces) {
    EXPECT_EQ(clos_.net.device(clos_.net.neighbor(i)).role, Role::Aggregation);
  }
}

TEST_F(FibBuilderTest, NullDefaultInstallsDropRule) {
  SmallClos s = make_small_clos();
  s.config.null_default_devices.insert(s.agg1);
  FibBuilder::compute_and_build(s.net, s.config);
  const net::Rule* rule = find_fib_rule(s.net, s.agg1, Ipv4Prefix(0, 0));
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->action.type, net::ActionType::Drop);
  EXPECT_EQ(rule->kind, RouteKind::Default);
}

TEST_F(FibBuilderTest, OwnLoopbackTerminatesOnLocalPort) {
  const Ipv4Prefix lo = clos_.net.device(clos_.tor1).loopbacks.front();
  const net::Rule* rule = find_fib_rule(clos_.net, clos_.tor1, lo);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->kind, RouteKind::Internal);
  ASSERT_EQ(rule->action.out_interfaces.size(), 1u);
  EXPECT_EQ(clos_.net.interface(rule->action.out_interfaces[0]).kind,
            PortKind::LocalPort);
}

TEST_F(FibBuilderTest, RemoteLoopbackLearnedViaBgp) {
  const Ipv4Prefix lo = clos_.net.device(clos_.agg2).loopbacks.front();
  const net::Rule* rule = find_fib_rule(clos_.net, clos_.tor1, lo);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->kind, RouteKind::Internal);
  ASSERT_EQ(rule->action.out_interfaces.size(), 1u);
  EXPECT_EQ(clos_.net.neighbor(rule->action.out_interfaces[0]), clos_.agg2);
}

TEST_F(FibBuilderTest, HostPrefixTerminatesOnHostPort) {
  const Ipv4Prefix p = clos_.net.device(clos_.tor1).host_prefixes.front();
  const net::Rule* rule = find_fib_rule(clos_.net, clos_.tor1, p);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(clos_.net.interface(rule->action.out_interfaces[0]).kind,
            PortKind::HostPort);
}

TEST_F(FibBuilderTest, WanSendsOriginatedTrafficToExternalPort) {
  const net::Rule* def = find_fib_rule(clos_.net, clos_.wan, Ipv4Prefix(0, 0));
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(clos_.net.interface(def->action.out_interfaces[0]).kind,
            PortKind::ExternalPort);
  const net::Rule* wide =
      find_fib_rule(clos_.net, clos_.wan, Ipv4Prefix::parse("100.64.0.0/16"));
  ASSERT_NE(wide, nullptr);
  EXPECT_EQ(wide->kind, RouteKind::WideArea);
}

TEST_F(FibBuilderTest, RebuildIsIdempotent) {
  const size_t rules_before = clos_.net.rule_count();
  FibBuilder::compute_and_build(clos_.net, clos_.config);
  EXPECT_EQ(clos_.net.rule_count(), rules_before);
}

}  // namespace
}  // namespace yardstick::routing
