// Property-based tests on randomized networks.
//
// A seeded generator produces layered random topologies (links only point
// from lower to higher layers, so forwarding is loop-free and flood
// conservation is exact) with randomized LPM tables. Each property is
// checked across a sweep of seeds via TEST_P.
#include <gtest/gtest.h>

#include <random>

#include "coverage/components.hpp"
#include "coverage/path_explorer.hpp"
#include "dataplane/simulator.hpp"
#include "yardstick/engine.hpp"
#include "yardstick/persist.hpp"

namespace yardstick {
namespace {

using dataplane::MatchSetIndex;
using dataplane::Transfer;
using packet::ConcretePacket;
using packet::Ipv4Prefix;
using packet::PacketSet;

struct RandomNet {
  net::Network network;
  net::DeviceId source;            // layer-0 device packets enter at
  net::InterfaceId source_port;    // its host port
};

/// Layered random network: `layers` tiers of `width` devices; every device
/// links to 1-2 devices in the next tier; the top tier has egress ports.
/// Each device gets a randomized LPM table over /8../24 prefixes with
/// forward/drop actions, plus (sometimes) a default route.
RandomNet make_random_net(uint32_t seed, int layers = 3, int width = 3) {
  std::mt19937 rng(seed);
  RandomNet out;
  net::Network& n = out.network;

  std::vector<std::vector<net::DeviceId>> tiers(layers);
  for (int layer = 0; layer < layers; ++layer) {
    for (int i = 0; i < width; ++i) {
      tiers[layer].push_back(n.add_device(
          "d" + std::to_string(layer) + "_" + std::to_string(i), net::Role::Other));
    }
  }
  out.source = tiers[0][0];
  out.source_port = n.add_interface(out.source, "in", net::PortKind::HostPort);

  // Links: each device to 1-2 next-tier devices.
  std::vector<std::vector<std::pair<net::InterfaceId, net::DeviceId>>> uplinks(
      n.device_count());
  for (int layer = 0; layer + 1 < layers; ++layer) {
    for (const net::DeviceId dev : tiers[layer]) {
      const int fanout = 1 + static_cast<int>(rng() % 2);
      for (int f = 0; f < fanout; ++f) {
        const net::DeviceId peer = tiers[layer + 1][rng() % width];
        const auto ia = n.add_interface(
            dev, "u" + std::to_string(n.device(dev).interfaces.size()));
        const auto ib = n.add_interface(
            peer, "d" + std::to_string(n.device(peer).interfaces.size()));
        n.add_link(ia, ib);
        uplinks[dev.value].emplace_back(ia, peer);
      }
    }
  }
  // Top tier egress ports.
  for (const net::DeviceId dev : tiers[layers - 1]) {
    const auto port = n.add_interface(dev, "out", net::PortKind::ExternalPort);
    uplinks[dev.value].emplace_back(port, net::DeviceId{});
  }

  // Random LPM tables.
  for (const net::Device& dev : n.devices()) {
    const auto& ups = uplinks[dev.id.value];
    if (ups.empty()) continue;
    const int rules = 2 + static_cast<int>(rng() % 6);
    for (int r = 0; r < rules; ++r) {
      const uint8_t len = static_cast<uint8_t>(8 + rng() % 17);
      const uint32_t addr = rng();
      const Ipv4Prefix prefix(addr, len);
      net::Action action;
      if (rng() % 4 == 0) {
        action = net::Action::drop();
      } else {
        action = net::Action::forward({ups[rng() % ups.size()].first});
      }
      n.add_rule(dev.id, net::MatchSpec::for_dst(prefix), std::move(action),
                 net::RouteKind::Other, 32u - len);
    }
    if (rng() % 2 == 0) {
      n.add_rule(dev.id, net::MatchSpec::for_dst(Ipv4Prefix(0, 0)),
                 net::Action::forward({ups[rng() % ups.size()].first}),
                 net::RouteKind::Default, 32);
    }
  }
  return out;
}

class RandomNetTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  RandomNetTest()
      : rnet_(make_random_net(GetParam())),
        index_(mgr_, rnet_.network),
        transfer_(index_) {}

  bdd::BddManager mgr_{packet::kNumHeaderBits};
  RandomNet rnet_;
  MatchSetIndex index_;
  Transfer transfer_;
};

TEST_P(RandomNetTest, MatchSetsPartitionMatchedSpace) {
  for (const net::Device& dev : rnet_.network.devices()) {
    PacketSet acc = PacketSet::none(mgr_);
    bdd::Uint128 total = 0;
    for (const net::RuleId rid : rnet_.network.table(dev.id)) {
      const PacketSet& ms = index_.match_set(rid);
      EXPECT_TRUE(ms.intersect(acc).empty());
      acc = acc.union_with(ms);
      total += ms.count();
    }
    EXPECT_EQ(acc, index_.matched_space(dev.id));
    EXPECT_EQ(total, index_.matched_space(dev.id).count());
    // Every match set stays within its match field.
    for (const net::RuleId rid : rnet_.network.table(dev.id)) {
      EXPECT_TRUE(index_.match_set(rid).raw().implies(index_.match_field(rid).raw()));
    }
  }
}

TEST_P(RandomNetTest, FloodConservation) {
  // Loop-free single-copy forwarding: every injected packet is delivered,
  // dropped by a rule, or unmatched — exactly once.
  const dataplane::SymbolicSimulator sim(transfer_);
  const PacketSet injected = PacketSet::all(mgr_);
  const auto result = sim.flood(rnet_.source, rnet_.source_port, injected);
  EXPECT_EQ(result.delivered.count() + result.dropped.count() + result.unmatched.count(),
            injected.count());
}

TEST_P(RandomNetTest, SymbolicAgreesWithConcrete) {
  const dataplane::SymbolicSimulator sym(transfer_);
  const dataplane::ConcreteSimulator conc(transfer_);
  std::mt19937 rng(GetParam() * 31 + 7);
  for (int i = 0; i < 16; ++i) {
    ConcretePacket pkt;
    pkt.dst_ip = rng();
    pkt.src_ip = rng();
    pkt.proto = static_cast<uint8_t>(rng());
    const auto trace = conc.run(rnet_.source, rnet_.source_port, pkt);
    const auto flood =
        sym.flood(rnet_.source, rnet_.source_port, PacketSet::from_packet(mgr_, pkt));
    switch (trace.disposition) {
      case dataplane::Disposition::Delivered:
        EXPECT_TRUE(flood.delivered.at(net::to_location(trace.egress)).contains(pkt));
        break;
      case dataplane::Disposition::Dropped:
        EXPECT_EQ(flood.dropped.count(), bdd::Uint128{1});
        break;
      case dataplane::Disposition::NoRule:
        EXPECT_EQ(flood.unmatched.count(), bdd::Uint128{1});
        break;
      case dataplane::Disposition::Loop:
        ADD_FAILURE() << "layered networks cannot loop";
    }
  }
}

TEST_P(RandomNetTest, PathGuardsPartitionInjectedSpace) {
  // Without ECMP fan-out, the maximal paths from one ingress partition the
  // injected header space: guard sizes sum to 2^104.
  const coverage::PathExplorer explorer(transfer_, nullptr);
  bdd::Uint128 total = 0;
  explorer.explore(rnet_.source, rnet_.source_port, PacketSet::all(mgr_),
                   [&](const coverage::ExploredPath& p) {
                     total += p.guard_size;
                     return true;
                   });
  // Packets unmatched at the *first* device traverse no rule and belong to
  // no path; add them back for the balance check.
  const auto stage = transfer_.process(rnet_.source, rnet_.source_port,
                                       PacketSet::all(mgr_));
  PacketSet claimed = PacketSet::none(mgr_);
  for (const auto& s : stage.fib) claimed = claimed.union_with(s.packets);
  total += PacketSet::all(mgr_).minus(claimed).count();
  EXPECT_EQ(total, PacketSet::all(mgr_).count());
}

TEST_P(RandomNetTest, CoverageMonotoneUnderRandomMarks) {
  std::mt19937 rng(GetParam() ^ 0xabcdef);
  coverage::CoverageTrace trace;
  double last_rule = 0.0, last_weighted = 0.0, last_device = 0.0;
  for (int step = 0; step < 6; ++step) {
    // Random mark: either a rule inspection or a packet set somewhere.
    if (rng() % 2 == 0 && rnet_.network.rule_count() > 0) {
      trace.mark_rule(net::RuleId{static_cast<uint32_t>(rng() % rnet_.network.rule_count())});
    } else {
      const auto loc = static_cast<packet::LocationId>(
          rng() % rnet_.network.interface_count());
      trace.mark_packet(loc, PacketSet::dst_prefix(
                                 mgr_, Ipv4Prefix(rng(), static_cast<uint8_t>(rng() % 25))));
    }
    const coverage::CoveredSets covered(index_, trace);
    const coverage::ComponentFactory factory(transfer_);
    const double rule_frac = coverage::collection_coverage(
        covered, factory.all_rules(), coverage::fractional_aggregator());
    const double weighted = coverage::collection_coverage(
        covered, factory.all_rules(), coverage::weighted_average_aggregator());
    const double device = coverage::collection_coverage(
        covered, factory.all_devices(), coverage::simple_average_aggregator());
    EXPECT_GE(rule_frac, last_rule - 1e-12);
    EXPECT_GE(weighted, last_weighted - 1e-12);
    EXPECT_GE(device, last_device - 1e-12);
    EXPECT_GE(rule_frac, 0.0);
    EXPECT_LE(rule_frac, 1.0);
    EXPECT_LE(weighted, 1.0);
    EXPECT_LE(device, 1.0);
    last_rule = rule_frac;
    last_weighted = weighted;
    last_device = device;
  }
}

TEST_P(RandomNetTest, PersistenceRoundTripOnRandomTraces) {
  std::mt19937 rng(GetParam() + 99);
  coverage::CoverageTrace trace;
  for (int i = 0; i < 8; ++i) {
    const auto loc =
        static_cast<packet::LocationId>(rng() % rnet_.network.interface_count());
    trace.mark_packet(
        loc, PacketSet::dst_prefix(mgr_, Ipv4Prefix(rng(), static_cast<uint8_t>(rng() % 33)))
                 .intersect(PacketSet::field_equals(mgr_, packet::Field::Proto,
                                                    static_cast<uint8_t>(rng()))));
  }
  bdd::BddManager mgr2(packet::kNumHeaderBits);
  const coverage::CoverageTrace loaded =
      ys::deserialize_trace(ys::serialize_trace(trace, mgr_), mgr2);
  ASSERT_EQ(loaded.marked_packets().location_count(),
            trace.marked_packets().location_count());
  for (const auto& [loc, ps] : trace.marked_packets().entries()) {
    EXPECT_EQ(loaded.marked_packets().at(loc).count(), ps.count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetTest, ::testing::Range(0u, 10u));

}  // namespace
}  // namespace yardstick
