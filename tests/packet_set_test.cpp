// Tests for PacketSet — the Figure 5 operations and field builders.
#include <gtest/gtest.h>

#include "bdd/uint128.hpp"
#include "packet/packet_set.hpp"

namespace yardstick::packet {
namespace {

using bdd::pow2;
using bdd::Uint128;

class PacketSetTest : public ::testing::Test {
 protected:
  bdd::BddManager mgr{kNumHeaderBits};
};

TEST_F(PacketSetTest, AllAndNoneCounts) {
  EXPECT_EQ(PacketSet::all(mgr).count(), pow2(104));
  EXPECT_EQ(PacketSet::none(mgr).count(), Uint128{0});
  EXPECT_TRUE(PacketSet::none(mgr).empty());
  EXPECT_TRUE(PacketSet::all(mgr).full());
}

TEST_F(PacketSetTest, DstPrefixCount) {
  const auto p24 = PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("10.0.1.0/24"));
  // 2^8 destination addresses x 2^72 other header bits.
  EXPECT_EQ(p24.count(), pow2(80));
  const auto p0 = PacketSet::dst_prefix(mgr, default_route_prefix());
  EXPECT_TRUE(p0.full());
}

TEST_F(PacketSetTest, PrefixNesting) {
  const auto outer = PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("10.0.0.0/8"));
  const auto inner = PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("10.1.0.0/16"));
  EXPECT_TRUE(inner.raw().implies(outer.raw()));
  EXPECT_EQ(inner.intersect(outer), inner);
  EXPECT_EQ(inner.union_with(outer), outer);
}

TEST_F(PacketSetTest, DisjointPrefixes) {
  const auto a = PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("10.0.0.0/8"));
  const auto b = PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("11.0.0.0/8"));
  EXPECT_TRUE(a.intersect(b).empty());
  EXPECT_EQ(a.union_with(b).count(), a.count() + b.count());
}

TEST_F(PacketSetTest, NegateComplementsCount) {
  const auto a = PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("10.0.0.0/9"));
  EXPECT_EQ(a.count() + a.negate().count(), pow2(104));
  EXPECT_TRUE(a.intersect(a.negate()).empty());
}

TEST_F(PacketSetTest, MinusIsRelativeComplement) {
  const auto a = PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("10.0.0.0/8"));
  const auto b = PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("10.0.0.0/9"));
  EXPECT_EQ(a.minus(b).count(), a.count() - b.count());
  EXPECT_TRUE(a.minus(a).empty());
}

TEST_F(PacketSetTest, FieldEquals) {
  const auto tcp = PacketSet::field_equals(mgr, Field::Proto, 6);
  EXPECT_EQ(tcp.count(), pow2(96));
  const auto port = PacketSet::field_equals(mgr, Field::DstPort, 443);
  EXPECT_EQ(port.count(), pow2(88));
  EXPECT_EQ(tcp.intersect(port).count(), pow2(80));
}

TEST_F(PacketSetTest, SrcPrefix) {
  const auto s = PacketSet::src_prefix(mgr, Ipv4Prefix::parse("192.168.0.0/16"));
  EXPECT_EQ(s.count(), pow2(88));
  ConcretePacket in;
  in.src_ip = 0xc0a80005u;
  EXPECT_TRUE(s.contains(in));
  in.src_ip = 0x0a000001u;
  EXPECT_FALSE(s.contains(in));
}

TEST_F(PacketSetTest, FieldRangeExactCount) {
  // [100, 4099] spans 4000 port values.
  const auto r = PacketSet::field_range(mgr, Field::DstPort, 100, 4099);
  EXPECT_EQ(r.count(), Uint128{4000} * pow2(88));
}

TEST_F(PacketSetTest, FieldRangeFullAndSingleton) {
  EXPECT_TRUE(PacketSet::field_range(mgr, Field::DstPort, 0, 65535).full());
  EXPECT_EQ(PacketSet::field_range(mgr, Field::SrcPort, 80, 80),
            PacketSet::field_equals(mgr, Field::SrcPort, 80));
  // Top-of-field ranges must not overflow.
  const auto top = PacketSet::field_range(mgr, Field::SrcPort, 65535, 65535);
  EXPECT_EQ(top.count(), pow2(88));
}

TEST_F(PacketSetTest, FieldRangeMembership) {
  const auto r = PacketSet::field_range(mgr, Field::DstPort, 1000, 2000);
  ConcretePacket p;
  for (const uint16_t port : {999, 1000, 1500, 2000, 2001}) {
    p.dst_port = port;
    EXPECT_EQ(r.contains(p), port >= 1000 && port <= 2000) << port;
  }
}

TEST_F(PacketSetTest, FromPacketSingleton) {
  ConcretePacket p;
  p.dst_ip = 0x0a000102u;
  p.src_ip = 0xc0a80001u;
  p.proto = 6;
  p.src_port = 1234;
  p.dst_port = 80;
  const auto s = PacketSet::from_packet(mgr, p);
  EXPECT_EQ(s.count(), Uint128{1});
  EXPECT_TRUE(s.contains(p));
  EXPECT_EQ(s.sample(), p);
}

TEST_F(PacketSetTest, SampleIsMember) {
  const auto s = PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("10.3.0.0/16"))
                     .intersect(PacketSet::field_equals(mgr, Field::Proto, 17));
  const ConcretePacket p = s.sample();
  EXPECT_TRUE(s.contains(p));
  EXPECT_TRUE(Ipv4Prefix::parse("10.3.0.0/16").contains(p.dst_ip));
  EXPECT_EQ(p.proto, 17);
}

TEST_F(PacketSetTest, RewriteFieldImage) {
  const auto s = PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("10.0.0.0/8"));
  const auto rewritten = s.rewrite_field(Field::DstIp, 0x0b000001u);
  EXPECT_EQ(rewritten, PacketSet::field_equals(mgr, Field::DstIp, 0x0b000001u));
}

TEST_F(PacketSetTest, RewritePreservesOtherFields) {
  const auto s = PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("10.0.0.0/8"))
                     .intersect(PacketSet::field_equals(mgr, Field::DstPort, 80));
  const auto rewritten = s.rewrite_field(Field::DstIp, 0x0b000001u);
  ConcretePacket p;
  p.dst_ip = 0x0b000001u;
  p.dst_port = 80;
  EXPECT_TRUE(rewritten.contains(p));
  p.dst_port = 81;
  EXPECT_FALSE(rewritten.contains(p));
}

TEST_F(PacketSetTest, RewritePreimageInvertsImage) {
  const auto s = PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("10.0.0.0/8"))
                     .intersect(PacketSet::field_equals(mgr, Field::Proto, 6));
  // Image then pre-image: the pre-image of "rewrite dst to c" of a set
  // containing dst==c with proto 6 is all packets with proto 6.
  const auto image = s.rewrite_field(Field::DstIp, 0x0a000001u);
  const auto pre = image.rewrite_field_preimage(Field::DstIp, 0x0a000001u);
  EXPECT_EQ(pre, PacketSet::field_equals(mgr, Field::Proto, 6));
}

TEST_F(PacketSetTest, RewritePreimageOfMissTargetIsEmpty) {
  const auto s = PacketSet::field_equals(mgr, Field::DstIp, 0x0a000001u);
  // Rewriting to an address outside the set can never land inside it.
  EXPECT_TRUE(s.rewrite_field_preimage(Field::DstIp, 0x0b000001u).empty());
}

TEST_F(PacketSetTest, ForgetField) {
  const auto s = PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("10.0.0.0/8"))
                     .intersect(PacketSet::field_equals(mgr, Field::DstPort, 80));
  const auto forgotten = s.forget_field(Field::DstPort);
  EXPECT_EQ(forgotten, PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("10.0.0.0/8")));
}

TEST_F(PacketSetTest, EqualIsSemanticEquality) {
  const auto a = PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("10.0.0.0/7"));
  const auto b = PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("10.0.0.0/8"))
                     .union_with(PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("11.0.0.0/8")));
  EXPECT_TRUE(a.equal(b));
}

TEST_F(PacketSetTest, ConcretePacketAssignmentRoundTrip) {
  ConcretePacket p;
  p.dst_ip = 0xdeadbeefu;
  p.src_ip = 0x01020304u;
  p.proto = 255;
  p.src_port = 65535;
  p.dst_port = 1;
  EXPECT_EQ(ConcretePacket::from_assignment(p.to_assignment()), p);
}

}  // namespace
}  // namespace yardstick::packet
