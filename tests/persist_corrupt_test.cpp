// Hostile-input tests for trace persistence: a corpus of truncated,
// corrupted and adversarial trace files, each asserting the *specific*
// typed error (CorruptTraceError + Detail) the hardened reader raises.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "test_util.hpp"
#include "yardstick/persist.hpp"

namespace yardstick::ys {
namespace {

using Detail = CorruptTraceError::Detail;
using packet::Ipv4Prefix;
using packet::PacketSet;
using testutil::make_tiny;
using testutil::TinyNetwork;

struct CorpusEntry {
  std::string name;
  std::string text;
  Detail expected;
};

class PersistCorruptTest : public ::testing::Test {
 protected:
  PersistCorruptTest() : tiny_(make_tiny()) {
    coverage::CoverageTrace trace;
    trace.mark_packet(net::to_location(tiny_.l1_host),
                      PacketSet::dst_prefix(mgr_, tiny_.p1));
    trace.mark_rule(tiny_.sp_to_p1);
    valid_ = serialize_trace(trace, mgr_);
  }

  /// A copy of the valid v2 file with one mutation applied.
  [[nodiscard]] std::string tampered(size_t pos, char c) const {
    std::string out = valid_;
    out[pos] = c;
    return out;
  }

  [[nodiscard]] std::vector<CorpusEntry> corpus() const {
    const size_t trailer = valid_.rfind("\nchecksum ");
    std::vector<CorpusEntry> out;
    // -- inputs that ran out (partial write, interrupted transfer) --
    out.push_back({"empty file", "", Detail::Truncated});
    out.push_back({"header only", "yardstick-trace v1\n", Detail::Truncated});
    out.push_back(
        {"v1 cut mid-nodes", "yardstick-trace v1\nnodes 2\n0 0 1\n", Detail::Truncated});
    out.push_back({"v1 cut mid-rules",
                   "yardstick-trace v1\nnodes 0\nrules 5\n1 2\n", Detail::Truncated});
    out.push_back({"v2 missing trailer", valid_.substr(0, trailer + 1),
                   Detail::Truncated});
    out.push_back({"v2 cut mid-nodes", valid_.substr(0, valid_.size() / 2),
                   Detail::Truncated});
    // -- inputs whose bytes are present but wrong (bit rot, tampering) --
    out.push_back({"garbage header", "not a trace at all\n", Detail::Corrupted});
    out.push_back({"v2 flipped payload byte", tampered(trailer / 2, '~'),
                   Detail::Corrupted});
    out.push_back({"v2 flipped checksum digit",
                   tampered(valid_.size() - 2, valid_[valid_.size() - 2] == '0' ? '1' : '0'),
                   Detail::Corrupted});
    out.push_back({"v2 garbage after trailer", valid_ + "extra\n", Detail::Corrupted});
    out.push_back({"non-numeric node field",
                   "yardstick-trace v1\nnodes 1\nx 0 1\nrules 0\nlocations 0\n",
                   Detail::Corrupted});
    out.push_back({"reserve bomb count",
                   "yardstick-trace v1\nnodes 99999999\n", Detail::Corrupted});
    out.push_back({"value over 32 bits",
                   "yardstick-trace v1\nnodes 0\nrules 1\n99999999999\nlocations 0\n",
                   Detail::Corrupted});
    out.push_back({"forward node reference",
                   "yardstick-trace v1\nnodes 1\n0 5 5\nrules 0\nlocations 0\n",
                   Detail::Corrupted});
    out.push_back({"variable out of range",
                   "yardstick-trace v1\nnodes 1\n999 0 1\nrules 0\nlocations 0\n",
                   Detail::Corrupted});
    out.push_back({"variable-ordering violation",
                   "yardstick-trace v1\nnodes 2\n3 0 1\n5 2 1\nrules 0\nlocations 0\n",
                   Detail::Corrupted});
    out.push_back({"bad location root",
                   "yardstick-trace v1\nnodes 0\nrules 0\nlocations 1\n7 9\n",
                   Detail::Corrupted});
    out.push_back({"wrong section keyword",
                   "yardstick-trace v1\nnodes 0\nrule 0\nlocations 0\n",
                   Detail::Corrupted});
    return out;
  }

  bdd::BddManager mgr_{packet::kNumHeaderBits};
  TinyNetwork tiny_;
  std::string valid_;
};

TEST_F(PersistCorruptTest, ValidV2RoundTrips) {
  bdd::BddManager mgr2(packet::kNumHeaderBits);
  const coverage::CoverageTrace loaded = deserialize_trace(valid_, mgr2);
  EXPECT_EQ(loaded.marked_rules().size(), 1u);
  EXPECT_EQ(loaded.marked_packets().location_count(), 1u);
}

TEST_F(PersistCorruptTest, EveryCorpusEntryRaisesItsTypedError) {
  for (const CorpusEntry& entry : corpus()) {
    bdd::BddManager mgr2(packet::kNumHeaderBits);
    try {
      (void)deserialize_trace(entry.text, mgr2);
      FAIL() << "accepted corrupt input: " << entry.name;
    } catch (const CorruptTraceError& e) {
      EXPECT_EQ(e.code(), Error::CorruptTrace) << entry.name;
      EXPECT_EQ(e.detail(), entry.expected)
          << entry.name << " — message: " << e.what();
    } catch (const std::exception& e) {
      FAIL() << entry.name << " threw an untyped " << e.what();
    }
  }
}

TEST_F(PersistCorruptTest, CorpusFilesRaiseTypedErrorsThroughLoadTrace) {
  // The acceptance-criteria loop: every corpus entry written to disk and
  // loaded through the file API must raise CorruptTraceError (never a
  // crash, hang, or silent partial trace), with the path in the context.
  size_t index = 0;
  for (const CorpusEntry& entry : corpus()) {
    const std::string path =
        ::testing::TempDir() + "/corrupt_" + std::to_string(index++) + ".trace";
    {
      std::ofstream out(path, std::ios::binary);
      out << entry.text;
    }
    bdd::BddManager mgr2(packet::kNumHeaderBits);
    try {
      (void)load_trace(path, mgr2);
      FAIL() << "accepted corrupt file: " << entry.name;
    } catch (const CorruptTraceError& e) {
      EXPECT_EQ(e.detail(), entry.expected) << entry.name;
      EXPECT_EQ(e.context().source, path) << entry.name;
    }
    std::remove(path.c_str());
  }
}

TEST_F(PersistCorruptTest, TruncationIsDetectedAtEveryPrefixLength) {
  // Chop the valid file at every length: the reader must always throw
  // (a proper prefix of a checksummed file is never valid — except the one
  // missing only the final newline, which still checksums) and classify
  // the cut as Truncated whenever the trailer is gone.
  for (size_t len = 0; len + 1 < valid_.size(); len += 7) {
    bdd::BddManager mgr2(packet::kNumHeaderBits);
    EXPECT_THROW((void)deserialize_trace(valid_.substr(0, len), mgr2),
                 CorruptTraceError)
        << "prefix length " << len;
  }
}

TEST_F(PersistCorruptTest, LegacyV1StillLoads) {
  // A v1 file (no trailer) assembled by hand keeps loading for
  // compatibility with archived traces.
  const std::string v1 =
      "yardstick-trace v1\nnodes 1\n0 0 1\nrules 1\n3\nlocations 1\n5 2\n";
  bdd::BddManager mgr2(packet::kNumHeaderBits);
  const coverage::CoverageTrace loaded = deserialize_trace(v1, mgr2);
  EXPECT_EQ(loaded.marked_rules().count(net::RuleId{3}), 1u);
  EXPECT_EQ(loaded.marked_packets().location_count(), 1u);
}

}  // namespace
}  // namespace yardstick::ys
