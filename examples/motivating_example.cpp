// The §2 / Figure 1 motivating example, end to end.
//
// A small data center: four leaves, two spines, two border routers, WAN.
// Border B2 carries a null-routed static default, so it silently stops
// re-advertising the default route — the data center's WAN connectivity
// secretly hangs on B1 alone.
//
// Three connectivity tests (leaf-to-leaf, leaf-to-WAN, border-to-leaf) all
// PASS despite the lurking misconfiguration. Rule coverage is what flags
// it: no test packet ever uses B2's default route, so its coverage is 0
// and visibly lower than symmetric B1. We then fail B1 and show the
// outage the metric would have prevented.
#include <cstdio>
#include <memory>

#include "nettest/reachability.hpp"
#include "routing/fib_builder.hpp"
#include "topo/subnets.hpp"
#include "yardstick/engine.hpp"

using namespace yardstick;
using net::DeviceId;
using net::InterfaceId;
using net::PortKind;
using net::Role;
using packet::Ipv4Prefix;
using packet::PacketSet;

namespace {

struct Figure1Network {
  net::Network net;
  routing::RoutingConfig routing;
  std::vector<DeviceId> leaves;
  std::vector<DeviceId> spines;
  DeviceId b1, b2, wan;
};

Figure1Network build(bool with_b1) {
  Figure1Network f;
  net::Network& n = f.net;
  topo::SubnetAllocator subnets;

  f.wan = n.add_device("wan", Role::Wan, routing::role_asn(Role::Wan));
  n.add_interface(f.wan, "internet0", PortKind::ExternalPort);
  if (with_b1) f.b1 = n.add_device("B1", Role::RegionalHub, routing::role_asn(Role::RegionalHub));
  f.b2 = n.add_device("B2", Role::RegionalHub, routing::role_asn(Role::RegionalHub));
  for (int s = 0; s < 2; ++s) {
    f.spines.push_back(
        n.add_device("S" + std::to_string(s + 1), Role::Spine, routing::role_asn(Role::Spine)));
  }
  for (int l = 0; l < 4; ++l) {
    const DeviceId leaf =
        n.add_device("L" + std::to_string(l + 1), Role::ToR, routing::role_asn(Role::ToR));
    f.leaves.push_back(leaf);
    n.device(leaf).host_prefixes.push_back(subnets.next_host_prefix());
    n.add_interface(leaf, "host0", PortKind::HostPort);
  }

  const auto connect = [&](DeviceId a, DeviceId b) {
    const InterfaceId ia =
        n.add_interface(a, "eth" + std::to_string(n.device(a).interfaces.size()));
    const InterfaceId ib =
        n.add_interface(b, "eth" + std::to_string(n.device(b).interfaces.size()));
    n.add_link(ia, ib, subnets.next_link_subnet());
  };
  if (with_b1) connect(f.b1, f.wan);
  connect(f.b2, f.wan);
  for (const DeviceId spine : f.spines) {
    if (with_b1) connect(spine, f.b1);
    connect(spine, f.b2);
    for (const DeviceId leaf : f.leaves) connect(spine, leaf);
  }

  // The misconfiguration: B2's static default is null-routed. The network
  // otherwise relies on BGP-propagated defaults (no fleet-wide static).
  f.routing.static_northbound_default = false;
  f.routing.null_default_devices.insert(f.b2);
  routing::FibBuilder::compute_and_build(f.net, f.routing);
  return f;
}

/// The three §2 tests as symbolic reachability queries.
nettest::TestSuite make_suite(const Figure1Network& f, bdd::BddManager& mgr) {
  nettest::TestSuite suite("figure-1");
  const net::Network& n = f.net;

  PacketSet dc_space = PacketSet::none(mgr);
  for (const DeviceId leaf : f.leaves) {
    dc_space = dc_space.union_with(
        PacketSet::dst_prefix(mgr, n.device(leaf).host_prefixes.front()));
  }

  // Test 1: each leaf reaches each other leaf's prefix.
  std::vector<nettest::ReachabilityQuery> leaf_to_leaf;
  for (const DeviceId src : f.leaves) {
    for (const DeviceId dst : f.leaves) {
      if (src == dst) continue;
      nettest::ReachabilityQuery q;
      q.source = src;
      q.source_interface = n.ports_of_kind(src, PortKind::HostPort).front();
      q.headers = PacketSet::dst_prefix(mgr, n.device(dst).host_prefixes.front());
      q.expected_egress = n.ports_of_kind(dst, PortKind::HostPort).front();
      q.expected_delivered = q.headers;
      leaf_to_leaf.push_back(std::move(q));
    }
  }
  suite.add(std::make_unique<nettest::ReachabilityTest>("LeafToLeaf",
                                                        std::move(leaf_to_leaf)));

  // Test 2: each leaf reaches the WAN with packets destined outside the DC.
  std::vector<nettest::ReachabilityQuery> leaf_to_wan;
  const InterfaceId internet = n.ports_of_kind(f.wan, PortKind::ExternalPort).front();
  for (const DeviceId src : f.leaves) {
    nettest::ReachabilityQuery q;
    q.source = src;
    q.source_interface = n.ports_of_kind(src, PortKind::HostPort).front();
    q.headers = PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("8.8.8.0/24"));
    q.expected_egress = internet;
    q.expected_delivered = q.headers;
    leaf_to_wan.push_back(std::move(q));
  }
  suite.add(std::make_unique<nettest::ReachabilityTest>("LeafToWan",
                                                        std::move(leaf_to_wan)));

  // Test 3: each border reaches each leaf.
  std::vector<nettest::ReachabilityQuery> border_to_leaf;
  std::vector<DeviceId> borders{f.b2};
  if (f.b1.valid()) borders.insert(borders.begin(), f.b1);
  for (const DeviceId border : borders) {
    for (const DeviceId dst : f.leaves) {
      nettest::ReachabilityQuery q;
      q.source = border;
      q.source_interface = InterfaceId{};  // injected at the border
      q.headers = PacketSet::dst_prefix(mgr, n.device(dst).host_prefixes.front());
      q.expected_egress = n.ports_of_kind(dst, PortKind::HostPort).front();
      q.expected_delivered = q.headers;
      border_to_leaf.push_back(std::move(q));
    }
  }
  suite.add(std::make_unique<nettest::ReachabilityTest>("BorderToLeaf",
                                                        std::move(border_to_leaf)));
  return suite;
}

}  // namespace

int main() {
  bdd::BddManager mgr(packet::kNumHeaderBits);
  Figure1Network f = build(/*with_b1=*/true);
  std::printf("figure-1 network: %s\n\n", f.net.summary().c_str());

  const dataplane::MatchSetIndex match_sets(mgr, f.net);
  const dataplane::Transfer transfer(match_sets);
  ys::CoverageTracker tracker;

  std::printf("-- running the three connectivity tests --\n");
  for (const auto& result : make_suite(f, mgr).run_all(transfer, tracker)) {
    std::printf("  %-14s %s (%zu checks)\n", result.name.c_str(),
                result.passed() ? "PASS" : "FAIL", result.checks);
  }

  std::printf("\n-- all tests pass; now ask Yardstick what they missed --\n");
  const ys::CoverageEngine engine(mgr, f.net, tracker.trace());
  const auto default_rule_of = [&](DeviceId border) {
    for (const net::RuleId r : f.net.table(border)) {
      if (f.net.rule(r).match.dst_prefix->length() == 0) return r;
    }
    return net::RuleId{};
  };
  const auto device_filter = [](DeviceId id) {
    return [id](const net::Device& d) { return d.id == id; };
  };
  for (const auto& [name, border] : {std::pair{"B1", f.b1}, std::pair{"B2", f.b2}}) {
    const double rule_frac =
        engine.rules_coverage(coverage::fractional_aggregator(), device_filter(border));
    const bool default_tested = engine.rule_coverage(default_rule_of(border)) > 0.0;
    std::printf("  %s: fractional rule coverage %5.1f%%, default route tested: %s\n",
                name, rule_frac * 100.0, default_tested ? "yes" : "NO");
  }
  std::printf("  -> B2's default route was never exercised by any test packet, and\n");
  std::printf("     B2's rule coverage sits below its symmetric peer B1: exactly the\n");
  std::printf("     signal that would have exposed the null-routed static default.\n");

  std::printf("\n-- what happens when B1 fails --\n");
  Figure1Network degraded = build(/*with_b1=*/false);
  bdd::BddManager mgr2(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex ms2(mgr2, degraded.net);
  const dataplane::Transfer tr2(ms2);
  const dataplane::ConcreteSimulator sim(tr2);
  packet::ConcretePacket pkt;
  pkt.dst_ip = 0x08080808u;  // 8.8.8.8
  const auto trace = sim.run(degraded.leaves.front(), InterfaceId{}, pkt);
  std::printf("  leaf L1 -> 8.8.8.8 without B1: %s", to_string(trace.disposition));
  if (!trace.hops.empty()) {
    std::printf(" at %s", degraded.net.device(trace.hops.back().device).name.c_str());
  }
  std::printf("\n  The whole data center loses WAN connectivity despite B2 being alive\n");
  std::printf("  -- exactly the outage the coverage report flagged in advance.\n");
  return 0;
}
