// Suite tuning: find redundant tests, order tests by marginal value, and
// synthesize probes for what remains untested.
//
// §7.2's closing argument is that coverage metrics redirect effort from
// redundant tests toward tests that provably add coverage. This example
// runs a deliberately bloated suite (two copies of the default-route
// inspection plus overlapping contract checks) through the SuiteAnalyzer,
// then asks suggest_tests for concrete packets that would close the
// remaining gaps.
#include <cstdio>
#include <memory>

#include "nettest/contract_checks.hpp"
#include "nettest/state_checks.hpp"
#include "routing/fib_builder.hpp"
#include "topo/fattree.hpp"
#include "yardstick/analysis.hpp"

using namespace yardstick;

int main() {
  topo::FatTree tree = topo::make_fat_tree({.k = 4});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);
  std::printf("%s\n\n", tree.network.summary().c_str());

  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex match_sets(mgr, tree.network);
  const dataplane::Transfer transfer(match_sets);

  // A bloated suite: duplicated inspection + two contract checks whose
  // coverage overlaps heavily (ToRContract subsumes the loopback check on
  // this topology, which has no loopbacks).
  nettest::TestSuite suite("bloated");
  suite.add(std::make_unique<nettest::DefaultRouteCheck>());
  suite.add(std::make_unique<nettest::ToRContract>());
  suite.add(std::make_unique<nettest::DefaultRouteCheck>());
  suite.add(std::make_unique<nettest::ConnectedRouteCheck>());

  const ys::SuiteAnalyzer analyzer(mgr, tree.network);
  const ys::SuiteAnalysis analysis = analyzer.analyze(transfer, suite);

  std::printf("per-test contributions (fractional rule coverage):\n");
  std::printf("  %-24s %10s %10s %s\n", "test", "solo", "marginal", "verdict");
  for (const ys::TestContribution& t : analysis.tests) {
    std::printf("  %-24s %9.1f%% %9.1f%% %s\n", t.name.c_str(), t.solo * 100.0,
                t.marginal * 100.0, t.redundant ? "REDUNDANT" : "keep");
  }
  std::printf("  full suite: %.1f%%\n\n", analysis.full * 100.0);

  std::printf("greedy order (run these first under a time budget):\n");
  for (size_t i = 0; i < analysis.greedy_order.size(); ++i) {
    std::printf("  %zu. %-24s cumulative %.1f%%\n", i + 1,
                analysis.tests[analysis.greedy_order[i]].name.c_str(),
                analysis.greedy_cumulative[i] * 100.0);
  }

  // What the suite still misses, as ready-to-run probes.
  ys::CoverageTracker tracker;
  (void)suite.run_all(transfer, tracker);
  const ys::CoverageEngine engine(mgr, tree.network, tracker.trace());
  const auto suggestions = ys::suggest_tests(engine, 5);
  std::printf("\nsuggested probes for untested rules (%zu shown):\n", suggestions.size());
  for (const ys::TestSuggestion& s : suggestions) {
    std::printf("  %s\n", s.to_string(tree.network).c_str());
  }
  return 0;
}
