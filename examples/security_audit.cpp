// Security-policy audit: coverage for the ACL half of the taxonomy.
//
// Installs ingress ACLs on every ToR of a regional network (deny a set of
// dangerous TCP ports, then permit), runs a security-focused test suite —
// the Figure 2 ACL rows plus a firewall-traversal waypoint check — and
// shows how Yardstick accounts for security rules: which ACL entries are
// exercised, how ACL denial clips behavioral coverage of the FIB behind
// it, and what the remaining security-rule gaps are.
#include <cstdio>
#include <memory>

#include "nettest/acl_checks.hpp"
#include "nettest/state_checks.hpp"
#include "nettest/waypoint.hpp"
#include "routing/fib_builder.hpp"
#include "topo/acl.hpp"
#include "topo/regional.hpp"
#include "yardstick/engine.hpp"

using namespace yardstick;

int main() {
  topo::RegionalParams params;
  params.datacenters = 1;
  // One aggregation router per pod and one spine: every inter-pod path
  // crosses the spine, making it a genuine waypoint (firewall stand-in).
  params.aggs_per_pod = 1;
  params.spines_per_dc = 1;
  topo::RegionalNetwork region = topo::make_regional(params);
  routing::FibBuilder::compute_and_build(region.network, region.routing);

  // Security policy: ToR ingress ACLs deny telnet and SMB-era ports.
  const topo::SecurityPolicy policy{{23, 135, 139, 445}};
  topo::install_ingress_acls(region.network, region.tors, policy);
  std::printf("network with ToR ingress ACLs: %s\n\n", region.network.summary().c_str());

  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex match_sets(mgr, region.network);
  const dataplane::Transfer transfer(match_sets);
  ys::CoverageTracker tracker;

  // The security suite: state inspection of the deny entries, the local
  // symbolic blocked-port check, and a waypoint obligation (inter-pod
  // traffic must traverse the spine layer — a stand-in for "must traverse
  // the firewall").
  nettest::TestSuite suite("security");
  suite.add(std::make_unique<nettest::AclBlockCheck>(policy.blocked_tcp_ports));
  suite.add(std::make_unique<nettest::BlockedPortCheck>(policy.blocked_tcp_ports));

  std::vector<nettest::WaypointQuery> waypoints;
  const net::DeviceId src_tor = region.tors.front();
  const net::DeviceId dst_tor = region.tors.back();
  nettest::WaypointQuery q;
  q.source = src_tor;
  q.source_interface =
      region.network.ports_of_kind(src_tor, net::PortKind::HostPort).front();
  q.headers = packet::PacketSet::dst_prefix(
      mgr, region.network.device(dst_tor).host_prefixes.front());
  q.waypoint = region.spines.front();
  waypoints.push_back(q);

  suite.add(std::make_unique<nettest::WaypointCheck>("AllPacketsViaSpine", waypoints));
  suite.add(std::make_unique<nettest::TracerouteWaypointCheck>("TracerouteViaSpine",
                                                               waypoints));

  for (const auto& result : suite.run_all(transfer, tracker)) {
    std::printf("test %-24s %s (%zu checks, %zu failures)\n", result.name.c_str(),
                result.passed() ? "PASS" : "FAIL", result.checks, result.failures);
  }

  const ys::CoverageEngine engine(mgr, region.network, tracker.trace());
  const ys::CoverageReport report = engine.report();
  std::printf("\n%s\n", report.to_text().c_str());

  std::printf("security-rule accounting:\n");
  for (const auto& gap : report.gaps) {
    if (gap.kind == net::RouteKind::Security) {
      std::printf("  ACL entries: %zu untested of %zu\n", gap.untested, gap.total);
    }
  }
  const net::DeviceId tor = region.tors.front();
  std::printf("  first ToR device coverage (ACL entries included): %.6f%%\n",
              engine.device_coverage(tor) * 100.0);
  std::printf("\nNote the clipping effect: packets the ACL denies can no longer\n"
              "exercise FIB rules behaviorally, so Yardstick's covered sets for\n"
              "rules behind an ACL exclude the denied space automatically.\n");
  return 0;
}
