// Path and flow coverage on a fat-tree (§4.3.2, §5.2).
//
// Demonstrates the expensive end of the metric spectrum: enumerate the
// path universe symbolically (streamed, never materialized), compute
// Equation-(3) coverage for every path, and zoom into individual flows.
// Shows why local metrics are the daily drivers and path metrics the
// periodic deep audit (§8.2).
#include <chrono>
#include <cstdio>
#include <memory>

#include "nettest/reachability.hpp"
#include "nettest/state_checks.hpp"
#include "routing/fib_builder.hpp"
#include "topo/fattree.hpp"
#include "yardstick/engine.hpp"

using namespace yardstick;

int main() {
  topo::FatTree tree = topo::make_fat_tree({.k = 4});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);
  std::printf("fat-tree k=4: %s\n\n", tree.network.summary().c_str());

  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex match_sets(mgr, tree.network);
  const dataplane::Transfer transfer(match_sets);

  // Run a mixed suite: pingmesh probes a single packet per ToR pair, the
  // default-route inspection covers the fat default rules.
  ys::CoverageTracker tracker;
  nettest::TestSuite suite("audit");
  suite.add(std::make_unique<nettest::DefaultRouteCheck>());
  suite.add(std::make_unique<nettest::ToRPingmesh>());
  for (const auto& result : suite.run_all(transfer, tracker)) {
    std::printf("test %-18s %s (%zu checks)\n", result.name.c_str(),
                result.passed() ? "PASS" : "FAIL", result.checks);
  }

  const ys::CoverageEngine engine(mgr, tree.network, tracker.trace());

  // --- Local metrics: cheap ---
  const auto t0 = std::chrono::steady_clock::now();
  const double rule_frac = engine.rules_coverage(coverage::fractional_aggregator());
  const double elapsed_local =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("\nfractional rule coverage: %.1f%% (computed in %.3fs)\n",
              rule_frac * 100.0, elapsed_local);

  // --- Path universe: the expensive audit ---
  const auto t1 = std::chrono::steady_clock::now();
  const ys::PathCoverageResult paths = engine.path_coverage();
  const double elapsed_paths =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();
  std::printf("path universe: %llu paths, %llu covered (fractional %.1f%%, mean %.1f%%)"
              " in %.3fs%s\n",
              static_cast<unsigned long long>(paths.total_paths),
              static_cast<unsigned long long>(paths.covered_paths),
              paths.fractional * 100.0, paths.mean * 100.0, elapsed_paths,
              paths.truncated ? " [truncated]" : "");
  std::printf("  -> concrete pings touch one packet per path: many paths are\n"
              "     partially covered, few end-to-end in full.\n");

  // --- Flow zoom-in: one ToR pair, symbolically ---
  const net::DeviceId src = tree.tors.front();
  const net::DeviceId dst = tree.tors.back();
  const auto src_port = tree.network.ports_of_kind(src, net::PortKind::HostPort).front();
  const packet::PacketSet flow_headers = packet::PacketSet::dst_prefix(
      mgr, tree.network.device(dst).host_prefixes.front());
  const double flow_cov = engine.flow_coverage(src, src_port, flow_headers);
  std::printf("\nflow %s -> %s coverage: %.4f%%\n",
              tree.network.device(src).name.c_str(), tree.network.device(dst).name.c_str(),
              flow_cov * 100.0);
  std::printf("  (a single ping samples one packet out of %s in the flow's space)\n",
              bdd::to_string(flow_headers.count()).c_str());

  // Now strengthen testing of exactly that flow with a symbolic
  // reachability query and watch its coverage saturate.
  std::vector<nettest::ReachabilityQuery> queries;
  nettest::ReachabilityQuery q;
  q.source = src;
  q.source_interface = src_port;
  q.headers = flow_headers;
  queries.push_back(q);
  (void)nettest::ReachabilityTest("FlowProbe", std::move(queries)).run(transfer, tracker);

  const ys::CoverageEngine engine2(mgr, tree.network, tracker.trace());
  std::printf("after adding a symbolic end-to-end test for the flow: %.1f%%\n",
              engine2.flow_coverage(src, src_port, flow_headers) * 100.0);
  return 0;
}
