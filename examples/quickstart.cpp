// Quickstart: build a small leaf-spine network, compute its forwarding
// state, run an instrumented test, and ask Yardstick how much of the
// network the test actually exercised.
//
//   $ ./quickstart
//
// Walks through the whole public API surface: topology construction, the
// BGP substrate, the test framework with its two-call coverage reporting,
// and the coverage engine's metrics and reports.
#include <cstdio>
#include <memory>

#include "nettest/contract_checks.hpp"
#include "nettest/state_checks.hpp"
#include "routing/fib_builder.hpp"
#include "topo/fattree.hpp"
#include "yardstick/engine.hpp"

using namespace yardstick;

int main() {
  // 1. A k=4 fat-tree (20 routers) with a WAN router on top.
  topo::FatTree tree = topo::make_fat_tree({.k = 4});
  std::printf("topology: %s\n", tree.network.summary().c_str());

  // 2. Compute the forwarding state with the eBGP substrate.
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);
  std::printf("after routing: %s\n\n", tree.network.summary().c_str());

  // 3. Run a test suite. Tests report coverage through the tracker —
  //    markRule for state inspections, markPacket for behavioral tests.
  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex match_sets(mgr, tree.network);
  const dataplane::Transfer transfer(match_sets);
  ys::CoverageTracker tracker;

  nettest::TestSuite suite("quickstart");
  suite.add(std::make_unique<nettest::DefaultRouteCheck>());
  suite.add(std::make_unique<nettest::ToRContract>());

  for (const nettest::TestResult& result : suite.run_all(transfer, tracker)) {
    std::printf("test %-22s [%s] checks=%zu failures=%zu\n", result.name.c_str(),
                to_string(result.category), result.checks, result.failures);
  }
  std::printf("coverage API calls: markPacket=%llu markRule=%llu\n\n",
              static_cast<unsigned long long>(tracker.packet_calls()),
              static_cast<unsigned long long>(tracker.rule_calls()));

  // 4. Phase 2: compute coverage metrics from the trace.
  const ys::CoverageEngine engine(mgr, tree.network, tracker.trace());
  std::printf("%s\n", engine.report().to_text().c_str());

  // 5. Drill into a single component: how well is the first core router
  //    tested, and which of its rules are untested?
  const net::DeviceId core = tree.cores.front();
  std::printf("device coverage of %s: %.1f%%\n",
              tree.network.device(core).name.c_str(),
              engine.device_coverage(core) * 100.0);
  const auto untested =
      engine.untested_rules([&](const net::Device& d) { return d.id == core; });
  std::printf("untested rules on it: %zu", untested.size());
  if (!untested.empty()) {
    std::printf(" (e.g. %s)", tree.network.rule(untested.front()).to_string().c_str());
  }
  std::printf("\n");
  return 0;
}
