// The §7 case study on the synthetic regional network.
//
// Replays one month of Yardstick deployment: run the original production
// suite (DefaultRouteCheck + AggCanReachTorLoopback), read the coverage
// report, find the three §7.2 gap categories (internal, connected,
// wide-area routes), add the two new tests the engineers wrote
// (InternalRouteCheck, ConnectedRouteCheck), and show the coverage
// improvement — the Figure 6/7 progression as a terminal session.
#include <cstdio>
#include <map>
#include <memory>

#include "nettest/contract_checks.hpp"
#include "nettest/state_checks.hpp"
#include "routing/fib_builder.hpp"
#include "topo/regional.hpp"
#include "yardstick/engine.hpp"

using namespace yardstick;

namespace {

ys::CoverageReport run_and_report(const topo::RegionalNetwork& region,
                                  bdd::BddManager& mgr,
                                  const dataplane::Transfer& transfer,
                                  const nettest::TestSuite& suite) {
  ys::CoverageTracker tracker;
  std::printf("== suite '%s' ==\n", suite.name().c_str());
  for (const auto& result : suite.run_all(transfer, tracker)) {
    std::printf("  %-24s %s (%zu checks)\n", result.name.c_str(),
                result.passed() ? "PASS" : "FAIL", result.checks);
  }
  const ys::CoverageEngine engine(mgr, region.network, tracker.trace());
  const ys::CoverageReport report = engine.report();
  std::printf("%s\n", report.to_text().c_str());
  return report;
}

}  // namespace

int main() {
  topo::RegionalParams params;  // the default two-datacenter region
  topo::RegionalNetwork region = topo::make_regional(params);
  routing::FibBuilder::compute_and_build(region.network, region.routing);
  std::printf("regional network: %s\n\n", region.network.summary().c_str());

  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex match_sets(mgr, region.network);
  const dataplane::Transfer transfer(match_sets);

  const std::unordered_set<net::DeviceId> excluded(
      region.routing.no_default_devices.begin(), region.routing.no_default_devices.end());

  // --- Month 0: the original test suite (Fig. 6a) ---
  nettest::TestSuite original("original");
  original.add(std::make_unique<nettest::DefaultRouteCheck>(excluded));
  original.add(std::make_unique<nettest::AggCanReachTorLoopback>());
  const ys::CoverageReport before = run_and_report(region, mgr, transfer, original);

  std::printf("-> gap analysis: most rules are untested. By category:\n");
  for (const auto& gap : before.gaps) {
    std::printf("   %-11s %4zu / %-4zu untested\n", to_string(gap.kind), gap.untested,
                gap.total);
  }
  std::printf("   (the three §7.2 categories: internal routes, connected routes,\n"
              "    wide-area routes)\n\n");

  // --- The two new tests (Fig. 6b, 6c) ---
  nettest::TestSuite internal_only("internal-route-check");
  internal_only.add(std::make_unique<nettest::InternalRouteCheck>());
  (void)run_and_report(region, mgr, transfer, internal_only);

  nettest::TestSuite connected_only("connected-route-check");
  connected_only.add(std::make_unique<nettest::ConnectedRouteCheck>());
  (void)run_and_report(region, mgr, transfer, connected_only);

  // --- Month 1: the final suite (Fig. 6d / Fig. 7) ---
  nettest::TestSuite final_suite("final");
  final_suite.add(std::make_unique<nettest::DefaultRouteCheck>(excluded));
  final_suite.add(std::make_unique<nettest::AggCanReachTorLoopback>());
  final_suite.add(std::make_unique<nettest::InternalRouteCheck>());
  final_suite.add(std::make_unique<nettest::ConnectedRouteCheck>());
  const ys::CoverageReport after = run_and_report(region, mgr, transfer, final_suite);

  const auto rel = [](double now, double was) {
    return was == 0.0 ? 0.0 : (now - was) / was * 100.0;
  };
  std::printf("== month-over-month improvement (the paper's headline) ==\n");
  std::printf("  rule coverage:      %.1f%% -> %.1f%%  (+%.0f%% relative)\n",
              before.overall.rule_fractional * 100.0, after.overall.rule_fractional * 100.0,
              rel(after.overall.rule_fractional, before.overall.rule_fractional));
  std::printf("  interface coverage: %.1f%% -> %.1f%%  (+%.0f%% relative)\n",
              before.overall.interface_fractional * 100.0,
              after.overall.interface_fractional * 100.0,
              rel(after.overall.interface_fractional, before.overall.interface_fractional));
  std::printf("\nremaining gaps after the final suite (Fig. 6d):\n");
  for (const auto& gap : after.gaps) {
    if (gap.untested > 0) {
      std::printf("  %-11s %4zu / %-4zu untested\n", to_string(gap.kind), gap.untested,
                  gap.total);
    }
  }
  std::printf("  -> wide-area routes await a specification (§7.3), and ToR\n"
              "     host-facing interfaces still need a dedicated test.\n");
  return 0;
}
